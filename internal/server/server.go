package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"squid"
	"squid/internal/buildinfo"
	"squid/internal/trace"
	"squid/internal/wal"
)

// Config tunes the serving layer. The zero value gets sensible defaults
// from New.
type Config struct {
	// MaxInFlight bounds concurrently running discovery/execute
	// requests (0 = GOMAXPROCS). A /v1/discover/batch request occupies
	// one slot but fans across the System's batch worker pool
	// (System.SetBatchWorkers), so worst-case discovery parallelism is
	// MaxInFlight × batch workers. Inserts are not gated: they
	// serialize on the αDB write lock and are cheap.
	MaxInFlight int
	// QueueDepth bounds how many admission waiters may queue behind the
	// in-flight requests before new work is shed with 429
	// (0 = 4×MaxInFlight; negative = no queue, shed immediately).
	QueueDepth int
	// RequestTimeout is the per-request deadline wired into the
	// discovery's context (0 = 30s; negative = no deadline). The
	// abduction checks cancellation between candidate evaluations, so
	// expiry aborts even a single long discovery.
	RequestTimeout time.Duration
	// SnapshotPath, when set, enables the snapshot surfaces: warm-boot
	// callers load from it, POST /v1/snapshot re-saves it atomically,
	// and the final drain snapshot lands there.
	SnapshotPath string
	// SnapshotInterval, when positive (and SnapshotPath is set), starts
	// a background loop re-saving the snapshot every interval.
	SnapshotInterval time.Duration
	// Logger receives the server's structured log lines (nil =
	// slog.Default()). cmd/squid-server wires a JSON or text handler
	// behind -log-format.
	Logger *slog.Logger
	// SlowQueryThreshold marks request traces whose wall time reaches it
	// as slow: they emit one structured warn line with the per-phase
	// breakdown and surface under /debug/traces?slow=1
	// (0 = 1s; negative = disabled).
	SlowQueryThreshold time.Duration
}

// Server is the HTTP serving layer over one squid.System. Create it
// with New, mount it as an http.Handler, and on shutdown call
// BeginDrain before http.Server.Shutdown and Finalize after (see
// cmd/squid-server for the canonical wiring).
type Server struct {
	sys   *squid.System
	cfg   Config
	mux   *http.ServeMux
	adm   *admission
	met   *metrics
	log   *slog.Logger
	start time.Time

	// reqPrefix + reqSeq mint the per-request ids: a random per-process
	// prefix so ids from different server lives never collide, and a
	// counter so one life's ids sort in arrival order.
	reqPrefix string
	reqSeq    atomic.Uint64

	draining atomic.Bool

	snapMu sync.Mutex // serializes snapshot writes

	stopSnap  chan struct{}
	snapWG    sync.WaitGroup
	finalOnce sync.Once
	finalErr  error
}

// New builds the serving layer over sys, applying Config defaults and
// starting the periodic snapshot loop when configured.
func New(sys *squid.System, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 4 * cfg.MaxInFlight
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	switch {
	case cfg.RequestTimeout == 0:
		cfg.RequestTimeout = 30 * time.Second
	case cfg.RequestTimeout < 0:
		cfg.RequestTimeout = 0
	}
	switch {
	case cfg.SlowQueryThreshold == 0:
		cfg.SlowQueryThreshold = time.Second
	case cfg.SlowQueryThreshold < 0:
		cfg.SlowQueryThreshold = 0 // disabled
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	var prefix [6]byte
	_, _ = rand.Read(prefix[:])
	s := &Server{
		sys:       sys,
		cfg:       cfg,
		mux:       http.NewServeMux(),
		adm:       newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		met:       newMetrics(),
		log:       cfg.Logger,
		start:     time.Now(),
		reqPrefix: hex.EncodeToString(prefix[:]),
		stopSnap:  make(chan struct{}),
	}
	s.route("POST /v1/discover", s.handleDiscover)
	s.route("POST /v1/discover/batch", s.handleDiscoverBatch)
	s.route("POST /v1/execute", s.handleExecute)
	s.route("POST /v1/insert", s.handleInsert)
	s.route("POST /v1/insert/batch", s.handleInsertBatch)
	s.route("POST /v1/snapshot", s.handleSnapshot)
	s.route("GET /v1/stats", s.handleStats)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /debug/traces", s.handleDebugTraces)

	if cfg.SnapshotPath != "" && cfg.SnapshotInterval > 0 {
		s.snapWG.Add(1)
		go s.snapshotLoop()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route mounts an instrumented handler: every request gets a request id
// (minted here unless the client sent X-Request-Id, echoed back in the
// X-Request-Id response header, and carried in the request context for
// traces and log lines), is counted by route and status code, and its
// latency lands in the route's histogram. A handler panic is contained
// here — logged with its stack, counted (squid_panics_total), answered
// with 500 when nothing was written yet — so one poisoned request can
// never take the process down. The handler's own defers (admission
// release, context cancel) run during the unwind before the recovery,
// so no slot leaks.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	_, path, _ := strings.Cut(pattern, " ")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.met.httpInFlight.Add(1)
		defer s.met.httpInFlight.Add(-1)
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = s.reqPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		} else if len(rid) > maxRequestIDLen {
			rid = rid[:maxRequestIDLen]
		}
		w.Header().Set("X-Request-Id", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panicsTotal.Add(1)
				s.log.Error("handler panic contained",
					"route", path, "request_id", rid,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError, ErrorResponse{
						Error: "internal server error", Code: "internal_error"})
				} else {
					// Too late to change the client's answer; at least
					// record the truth in the metrics.
					sw.code = http.StatusInternalServerError
				}
			}
			s.met.record(path, sw.code, time.Since(start).Seconds())
		}()
		h(sw, r)
	})
}

// maxRequestIDLen caps client-supplied X-Request-Id values so a hostile
// header cannot bloat every log line and trace that echoes it.
const maxRequestIDLen = 128

// requestIDKey carries the request id through the request context.
type requestIDKey struct{}

// requestIDFrom returns the request id minted (or accepted) by route,
// or "" on a context that never passed through it.
func requestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(requestIDKey{}).(string)
	return rid
}

// statusWriter captures the response status code for metrics and
// whether anything was written (the panic recovery must not write a 500
// over a partially sent response).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// requestCtx derives the per-request context: the client's cancellation
// plus the configured server-side deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// --- wire types -------------------------------------------------------

// ErrorResponse is the JSON error envelope of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// DiscoverRequest asks for one query intent discovery.
type DiscoverRequest struct {
	Examples []string `json:"examples"`
	// Explain requests the full Algorithm 1 reasoning in the response.
	Explain bool `json:"explain,omitempty"`
}

// DiscoverResponse is one abduced query intent.
type DiscoverResponse struct {
	Entity     string    `json:"entity"`
	Attribute  string    `json:"attribute"`
	SQL        string    `json:"sql"`
	Original   string    `json:"original"`
	Filters    []string  `json:"filters"`
	Joins      int       `json:"join_predicates"`
	Selections int       `json:"selection_predicates"`
	Output     []string  `json:"output"`
	Query      QueryJSON `json:"query"`
	Explain    string    `json:"explain,omitempty"`
	WallMS     float64   `json:"wall_ms"`
	// Trace is the request's span tree, embedded when the client asked
	// with ?trace=1.
	Trace *trace.TraceJSON `json:"trace,omitempty"`
}

// BatchDiscoverRequest asks for many independent discoveries, fanned
// across System.DiscoverBatch's worker pool.
type BatchDiscoverRequest struct {
	Sets    [][]string `json:"sets"`
	Explain bool       `json:"explain,omitempty"`
}

// BatchDiscoverResponse is parallel to the request's Sets: failed sets
// have a null result and their error text in Errors.
type BatchDiscoverResponse struct {
	Results []*DiscoverResponse `json:"results"`
	Errors  []string            `json:"errors"`
	WallMS  float64             `json:"wall_ms"`
}

// ExecuteRequest runs one logical query plan.
type ExecuteRequest struct {
	Query QueryJSON `json:"query"`
}

// ExecuteResponse holds the projected tuples.
type ExecuteResponse struct {
	Cols    []string `json:"cols"`
	Rows    [][]any  `json:"rows"`
	NumRows int      `json:"num_rows"`
	WallMS  float64  `json:"wall_ms"`
}

// InsertRequest appends one row; the target may be an entity or a fact
// relation (dispatched automatically, like squid.InsertOp).
type InsertRequest struct {
	Rel    string `json:"rel"`
	Values []any  `json:"values"`
}

// InsertBatchRequest appends many rows inside one αDB critical section.
type InsertBatchRequest struct {
	Ops []InsertRequest `json:"ops"`
}

// InsertResponse reports how many rows were applied.
type InsertResponse struct {
	Inserted int     `json:"inserted"`
	WallMS   float64 `json:"wall_ms"`
}

// SnapshotResponse reports an on-demand snapshot save.
type SnapshotResponse struct {
	Path   string  `json:"path"`
	Bytes  int64   `json:"bytes"`
	WallMS float64 `json:"wall_ms"`
}

// StatsResponse is the introspection surface: the Fig 18 αDB statistics
// plus online-pipeline health.
type StatsResponse struct {
	Name             string         `json:"name"`
	Version          buildinfo.Info `json:"version"`
	UptimeSec        float64        `json:"uptime_sec"`
	DBBytes          int64          `json:"db_bytes"`
	NumRelations     int            `json:"num_relations"`
	PrecomputedBytes int64          `json:"precomputed_bytes"`
	BuildMS          float64        `json:"build_ms"`
	DerivedRelations int            `json:"derived_relations"`
	DerivedRows      int            `json:"derived_rows"`
	BasicProps       int            `json:"basic_props"`
	DerivedProps     int            `json:"derived_props"`
	HashIndexes      int            `json:"hash_indexes"`
	SelCacheEntries  int            `json:"selcache_entries"`
	SelCacheHits     uint64         `json:"selcache_hits"`
	SelCacheMisses   uint64         `json:"selcache_misses"`
	EpochSeq         uint64         `json:"epoch_seq"`
	EpochAgeSec      float64        `json:"epoch_age_sec"`
	EpochPublishes   uint64         `json:"epoch_publishes"`
	EpochCombines    uint64         `json:"epoch_combines"`
	RelationCards    []RelCard      `json:"relation_cards"`
}

// RelCard pairs a relation with its cardinality.
type RelCard struct {
	Relation string `json:"relation"`
	Rows     int    `json:"rows"`
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req DiscoverRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	start := time.Now()
	defer s.adm.releaseAndObserve(start)
	rec := trace.NewRecorder(0)
	root := rec.Root(trace.PhaseDiscover, "")
	disc, err := s.sys.DiscoverContext(trace.NewContext(ctx, root), req.Examples)
	root.End()
	t := s.observeTrace(r, rec, "discover")
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := s.discoverResponse(disc, req.Explain, time.Since(start))
	if wantTrace(r) {
		resp.Trace = t.JSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

// wantTrace reports whether the client asked for the span tree in the
// response (?trace=1). Tracing itself is always on — the recorder is
// cheap and the ring wants every request — the flag only controls
// response embedding.
func wantTrace(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// observeTrace finalizes a request's recorder and lands the trace
// everywhere the serving layer exposes it: the slow-query log line (when
// the wall time reaches the threshold), the System's trace ring
// (/debug/traces), and — for discoveries — the per-phase latency
// histograms on /metrics. Call it after the request's work has joined
// and before writing the response, so an embedded trace is final.
func (s *Server) observeTrace(r *http.Request, rec *trace.Recorder, kind string) *trace.Trace {
	t := rec.Finish(kind, requestIDFrom(r.Context()))
	if th := s.cfg.SlowQueryThreshold; th > 0 && t.Wall >= th {
		t.Slow = true
		phases := make(map[string]float64)
		for phase, d := range t.PhaseTotals() {
			phases[phase] = msOf(d)
		}
		s.log.Warn("slow query",
			"kind", kind,
			"request_id", t.RequestID,
			"wall_ms", msOf(t.Wall),
			"threshold_ms", msOf(th),
			"phase_ms", phases)
	}
	s.sys.Traces().Put(t)
	if kind == "discover" {
		for phase, d := range t.PhaseTotals() {
			s.met.observePhase(phase, d.Seconds())
		}
	}
	return t
}

func (s *Server) handleDiscoverBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchDiscoverRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	start := time.Now()
	defer s.adm.releaseAndObserve(start)
	results, errs := s.sys.DiscoverBatchDetailed(ctx, req.Sets)
	wall := time.Since(start)
	resp := BatchDiscoverResponse{
		Results: make([]*DiscoverResponse, len(results)),
		Errors:  make([]string, len(results)),
		WallMS:  msOf(wall),
	}
	for i, d := range results {
		if d != nil {
			resp.Results[i] = s.discoverResponse(d, req.Explain, 0)
		} else if errs[i] != nil {
			resp.Errors[i] = errs[i].Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	q, err := req.Query.ToEngineQuery()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad_query"})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	start := time.Now()
	defer s.adm.releaseAndObserve(start)
	rec := trace.NewRecorder(0)
	root := rec.Root(trace.PhaseExecute, "")
	res, err := s.sys.ExecuteContext(trace.NewContext(ctx, root), q)
	root.End()
	s.observeTrace(r, rec, "execute")
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error(), Code: "timeout"})
		case errors.Is(err, context.Canceled):
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Code: "canceled"})
		default:
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad_query"})
		}
		return
	}
	resp := ExecuteResponse{
		Cols:    res.Cols,
		Rows:    make([][]any, 0, len(res.Rows)),
		NumRows: res.NumRows(),
		WallMS:  msOf(time.Since(start)),
	}
	for _, row := range res.Rows {
		out := make([]any, len(row))
		for i, v := range row {
			out[i] = valueToJSON(v)
		}
		resp.Rows = append(resp.Rows, out)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.applyInserts(w, r, []InsertRequest{req})
}

func (s *Server) handleInsertBatch(w http.ResponseWriter, r *http.Request) {
	var req InsertBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.applyInserts(w, r, req.Ops)
}

// maxBatchOps caps the rows of one insert request: a batch builds one
// copy-on-write epoch, so the cap bounds the clone footprint and the
// publish latency of a single request (discoveries are never stalled
// either way — readers are wait-free on their pinned epochs).
const maxBatchOps = 4096

// applyInserts converts the wire rows against the live schema and
// applies them through System.InsertBatchContext (one copy-on-write
// epoch per batch), tracing the lock wait, the apply, the publish, and
// the WAL barrier under one insert root span. Schema validation reads
// the current epoch's combined database — memoized per epoch, so
// resolving it per request is one atomic load.
func (s *Server) applyInserts(w http.ResponseWriter, r *http.Request, rows []InsertRequest) {
	if len(rows) > maxBatchOps {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("batch of %d rows exceeds the %d-row cap; split it (each batch holds the write lock once)",
				len(rows), maxBatchOps),
			Code: "batch_too_large"})
		return
	}
	db := s.sys.ExecutableDB()
	ops := make([]squid.InsertOp, 0, len(rows))
	for i, row := range rows {
		rel := db.Relation(row.Rel)
		if rel == nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: fmt.Sprintf("row %d: unknown relation %q", i, row.Rel), Code: "bad_insert"})
			return
		}
		cols := rel.Columns()
		if len(row.Values) != len(cols) {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: fmt.Sprintf("row %d: relation %q wants %d values, got %d",
					i, row.Rel, len(cols), len(row.Values)), Code: "bad_insert"})
			return
		}
		vals := make([]squid.Value, len(cols))
		for j, raw := range row.Values {
			v, err := valueForColumn(cols[j], raw)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, ErrorResponse{
					Error: fmt.Sprintf("row %d: %v", i, err), Code: "bad_insert"})
				return
			}
			vals[j] = v
		}
		ops = append(ops, squid.InsertOp{Rel: row.Rel, Vals: vals})
	}
	start := time.Now()
	rec := trace.NewRecorder(0)
	root := rec.Root(trace.PhaseInsert, "")
	root.Add(trace.CounterRows, int64(len(ops)))
	err := s.sys.InsertBatchContext(trace.NewContext(r.Context(), root), ops)
	root.End()
	s.observeTrace(r, rec, "insert")
	if err != nil {
		if errors.Is(err, squid.ErrWALSync) {
			// The rows are in memory but not durable, and the log refuses
			// further writes: a server error, not the client's fault.
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{
				Error: err.Error(), Code: "wal_sync_failed"})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad_insert"})
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{Inserted: len(ops), WallMS: msOf(time.Since(start))})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: "no snapshot path configured", Code: "no_snapshot_path"})
		return
	}
	start := time.Now()
	n, err := s.SaveSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Code: "snapshot_failed"})
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Path: s.cfg.SnapshotPath, Bytes: n, WallMS: msOf(time.Since(start))})
}

// handleStats renders the introspection surface from one pinned αDB
// epoch: System.Stats snapshots the epoch once and derives every field
// from that single consistent state, wait-free with respect to
// writers.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Stats()
	resp := StatsResponse{
		Name:             st.Name,
		Version:          buildinfo.Get(),
		UptimeSec:        time.Since(s.start).Seconds(),
		DBBytes:          st.DBBytes,
		NumRelations:     st.NumRelations,
		PrecomputedBytes: st.PrecomputedSize,
		BuildMS:          msOf(st.BuildTime),
		DerivedRelations: st.NumDerivedRels,
		DerivedRows:      st.DerivedRows,
		BasicProps:       st.NumBasicProps,
		DerivedProps:     st.NumDerivedProp,
		HashIndexes:      st.NumHashIndexes,
		SelCacheEntries:  st.SelCacheEntries,
		SelCacheHits:     st.SelCacheHits,
		SelCacheMisses:   st.SelCacheMisses,
		EpochSeq:         st.EpochSeq,
		EpochAgeSec:      st.EpochAgeSec,
		EpochPublishes:   st.EpochPublishes,
		EpochCombines:    st.EpochCombines,
	}
	for _, rc := range st.RelationCards {
		resp.RelationCards = append(resp.RelationCards, RelCard{Relation: rc.Relation, Rows: rc.Rows})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The scrape reads only cheap counters: the selectivity-cache
	// numbers and the epoch chain's health (one atomic load each) —
	// never the full Stats computation.
	hits, misses, entries := s.sys.CacheMetrics()
	epochSeq, epochAge, publishes, combines := s.sys.EpochMetrics()
	retired, retainedBytes := s.sys.EpochGCMetrics()
	var walMetrics *wal.Metrics
	if l := s.sys.WAL(); l != nil {
		wm := l.Metrics()
		walMetrics = &wm
	}
	var b strings.Builder
	s.met.render(&b, liveGauges{
		discoverInFlight:   s.adm.inFlight(),
		queueDepth:         s.adm.queued.Load(),
		cacheHits:          hits,
		cacheMisses:        misses,
		cacheEntries:       entries,
		epochSeq:           epochSeq,
		epochAgeSec:        epochAge.Seconds(),
		epochPublishes:     publishes,
		epochCombines:      combines,
		epochRetired:       retired,
		epochRetainedBytes: retainedBytes,
		wal:                walMetrics,
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// DebugTracesResponse is the GET /debug/traces answer: the most recent
// request traces, newest first.
type DebugTracesResponse struct {
	// SlowQueryThresholdMS is the configured slow-query threshold
	// (0 when disabled).
	SlowQueryThresholdMS float64 `json:"slow_query_threshold_ms"`
	// Total counts every trace recorded since boot, including those the
	// ring has already overwritten.
	Total uint64 `json:"total"`
	// Traces holds the selected traces, newest first.
	Traces []*trace.TraceJSON `json:"traces"`
}

// handleDebugTraces serves the trace ring: `?n=` caps how many recent
// traces return (default 32), `?slow=1` keeps only traces past the
// slow-query threshold. Reads are wait-free against in-flight writers —
// the ring hands out immutable *Trace values.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	max := 32
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: fmt.Sprintf("bad n %q: want a positive integer", v), Code: "bad_request"})
			return
		}
		max = n
	}
	slowOnly := q.Get("slow") == "1" || q.Get("slow") == "true"
	ring := s.sys.Traces()
	resp := DebugTracesResponse{
		SlowQueryThresholdMS: msOf(s.cfg.SlowQueryThreshold),
		Total:                ring.Total(),
		Traces:               []*trace.TraceJSON{},
	}
	for _, t := range ring.Recent(max) {
		if slowOnly && !t.Slow {
			continue
		}
		resp.Traces = append(resp.Traces, t.JSON())
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- shared plumbing --------------------------------------------------

// admit claims an admission slot, writing the load-shedding or timeout
// response itself when the claim fails.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	err := s.adm.acquire(ctx)
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrOverloaded):
		s.met.shedTotal.Add(1)
		// Hint when a retry would plausibly find queue room: work ahead
		// over observed service rate, not a constant.
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error: err.Error(), Code: "overloaded"})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{
			Error: "timed out waiting for an admission slot", Code: "timeout"})
	default: // client went away while queued
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: err.Error(), Code: "canceled"})
	}
	return false
}

// writeError maps a discovery error to its HTTP shape.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, squid.ErrNoExamples):
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "no_examples"})
	case errors.Is(err, squid.ErrNoEntities):
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error(), Code: "no_entities"})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error(), Code: "timeout"})
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Code: "canceled"})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Code: "internal"})
	}
}

func (s *Server) discoverResponse(d *squid.Discovery, explain bool, wall time.Duration) *DiscoverResponse {
	joins, sels := d.PredicateCount()
	resp := &DiscoverResponse{
		Entity:     d.Entity,
		Attribute:  d.Attribute,
		SQL:        d.SQL,
		Original:   d.Original,
		Joins:      joins,
		Selections: sels,
		Output:     d.Output,
		Query:      FromEngineQuery(d.Plan()),
		WallMS:     msOf(wall),
	}
	for _, f := range d.Filters {
		resp.Filters = append(resp.Filters, f.String())
	}
	if explain {
		resp.Explain = d.Explain()
	}
	return resp
}

// decodeBody decodes the JSON request body (capped at 8 MiB), writing
// the 400 itself on malformed input.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "malformed request body: " + err.Error(), Code: "bad_request"})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// --- snapshot & drain -------------------------------------------------

// SaveSnapshot persists the system to the configured path with a
// write-then-rename, so an interrupted save never leaves a truncated
// snapshot poisoning later warm boots. Concurrent saves serialize; the
// save itself pins the αDB epoch current at encode time, so it
// captures every previously acknowledged write (an insert only
// returns after its epoch is published) while discoveries and further
// inserts keep running untouched.
//
// With a write-ahead log attached, a save is also a log checkpoint:
// the log rotates before the encode (the retired segment is fully
// synced and every record in it has a sequence the snapshot will
// cover) and discards it only after the rename lands. A crash at any
// point in between leaves both the retired segment and the old
// snapshot in place, so no acknowledged write is ever lost to a
// half-finished checkpoint.
func (s *Server) SaveSnapshot() (int64, error) {
	if s.cfg.SnapshotPath == "" {
		return 0, errors.New("server: no snapshot path configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if l := s.sys.WAL(); l != nil {
		if err := l.BeginCheckpoint(); err != nil {
			return 0, fmt.Errorf("server: snapshot: wal checkpoint: %w", err)
		}
	}
	tmp := s.cfg.SnapshotPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := s.sys.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	// Flush to stable storage before the rename makes the file visible
	// at the final path: a crash right after the rename must not leave
	// a truncated snapshot there.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	info, statErr := f.Stat()
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.SnapshotPath); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("server: snapshot: %w", err)
	}
	if l := s.sys.WAL(); l != nil {
		// The snapshot durably covers everything in the retired segment;
		// only now is it safe to discard. Failure is non-fatal: the
		// segment is re-discarded by the next successful checkpoint.
		if err := l.EndCheckpoint(); err != nil {
			s.log.Warn("wal checkpoint cleanup failed", "err", err)
		}
	}
	s.met.snapshotTotal.Add(1)
	s.met.snapshotUnix.Store(time.Now().Unix())
	if statErr != nil {
		return 0, nil
	}
	return info.Size(), nil
}

// snapshotLoop re-saves the snapshot every SnapshotInterval until
// Finalize stops it. Failures are logged and counted
// (squid_snapshot_failures_total), so a full disk shows up in both the
// server log and the scrape instead of silently dropping checkpoints.
func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := s.SaveSnapshot(); err != nil {
				s.met.snapshotFailed.Add(1)
				s.log.Error("periodic snapshot failed", "err", err)
			}
		case <-s.stopSnap:
			return
		}
	}
}

// BeginDrain flips the server into draining mode: /healthz answers 503
// so load balancers stop routing new traffic. Requests already accepted
// keep being served; pair it with http.Server.Shutdown, which stops
// accepting connections and waits for in-flight requests.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Finalize stops the periodic snapshot loop, writes the final
// snapshot (when a path is configured), and closes the write-ahead log
// (final fsync, so even under the interval policy a graceful shutdown
// loses nothing). Call it after http.Server.Shutdown has returned, so
// the final snapshot includes every insert that was in flight: the
// save pins the epoch current at Finalize time — the final published
// epoch — never a stale one held from before the drain. Idempotent.
func (s *Server) Finalize() error {
	s.finalOnce.Do(func() {
		close(s.stopSnap)
		s.snapWG.Wait()
		if s.cfg.SnapshotPath != "" {
			_, s.finalErr = s.SaveSnapshot()
		}
		if l := s.sys.WAL(); l != nil {
			if err := l.Close(); err != nil && s.finalErr == nil {
				s.finalErr = fmt.Errorf("server: close wal: %w", err)
			}
		}
	})
	return s.finalErr
}
