package server

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"squid/internal/trace"
)

// TestDiscoverTraceEmbedding asserts the ?trace=1 contract: the
// response carries the request's span tree, its phase totals sum to
// within the request's wall time, and the trace is absent without the
// flag.
func TestDiscoverTraceEmbedding(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	var plain DiscoverResponse
	if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, &plain); code != http.StatusOK {
		t.Fatalf("discover: status %d", code)
	}
	if plain.Trace != nil {
		t.Error("trace embedded without ?trace=1")
	}

	var traced DiscoverResponse
	if code := postJSON(t, c, ts.URL+"/v1/discover?trace=1", DiscoverRequest{Examples: exampleSet}, &traced); code != http.StatusOK {
		t.Fatalf("discover?trace=1: status %d", code)
	}
	tr := traced.Trace
	if tr == nil {
		t.Fatal("?trace=1 response carries no trace")
	}
	if tr.Kind != "discover" {
		t.Errorf("trace kind %q, want discover", tr.Kind)
	}
	if tr.RequestID == "" {
		t.Error("trace has no request id")
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Phase != "discover" {
		t.Fatalf("want one discover root span, got %+v", tr.Spans)
	}
	if len(tr.Spans[0].Children) == 0 {
		t.Error("discover root has no phase children")
	}
	var sum float64
	for _, ms := range tr.PhaseMS {
		sum += ms
	}
	if sum <= 0 {
		t.Errorf("phase totals sum %v, want > 0", sum)
	}
	if sum > tr.WallMS {
		t.Errorf("phase totals sum %.4fms exceeds wall %.4fms", sum, tr.WallMS)
	}
	if traced.WallMS < tr.WallMS {
		t.Errorf("trace wall %.4fms exceeds request wall %.4fms", tr.WallMS, traced.WallMS)
	}
	for _, phase := range []string{"resolve", "candidate"} {
		if _, ok := findSpan(tr.Spans, phase); !ok {
			t.Errorf("span tree missing phase %q: %+v", phase, tr.Spans)
		}
	}
}

func findSpan(spans []*trace.SpanJSON, phase string) (*trace.SpanJSON, bool) {
	for _, sp := range spans {
		if sp.Phase == phase {
			return sp, true
		}
		if sub, ok := findSpan(sp.Children, phase); ok {
			return sub, true
		}
	}
	return nil, false
}

// TestRequestIDHeader asserts the request-id middleware: minted ids are
// echoed and distinct across requests, and a client-supplied id is
// respected.
func TestRequestIDHeader(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := c.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rid := resp.Header.Get("X-Request-Id")
		if rid == "" {
			t.Fatal("no X-Request-Id on response")
		}
		if seen[rid] {
			t.Fatalf("request id %q repeated", rid)
		}
		seen[rid] = true
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-42")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-42" {
		t.Errorf("client-supplied id not echoed: got %q", got)
	}
}

// TestDebugTraces asserts the trace ring surface: every API request
// lands a trace, newest first, and the slow view plus the structured
// slow-query log line fire exactly when the threshold is crossed.
func TestDebugTraces(t *testing.T) {
	sys := newTestSystem(t)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	// Threshold of 1ns: every request is slow, so the slow path is
	// exercised deterministically.
	srv := New(sys, Config{Logger: logger, SlowQueryThreshold: time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	for i := 0; i < 2; i++ {
		if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, nil); code != http.StatusOK {
			t.Fatalf("discover: status %d", code)
		}
	}
	var ins InsertResponse
	insert := InsertBatchRequest{Ops: []InsertRequest{
		{Rel: "research", Values: []any{100, "systems"}},
	}}
	if code := postJSON(t, c, ts.URL+"/v1/insert/batch", insert, &ins); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}

	var dbg DebugTracesResponse
	if code := getJSON(t, c, ts.URL+"/debug/traces", &dbg); code != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", code)
	}
	if dbg.Total != 3 {
		t.Errorf("total %d, want 3", dbg.Total)
	}
	if len(dbg.Traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(dbg.Traces))
	}
	// Newest first: the insert came last.
	if dbg.Traces[0].Kind != "insert" || dbg.Traces[1].Kind != "discover" {
		t.Errorf("order not newest-first: %q, %q, %q",
			dbg.Traces[0].Kind, dbg.Traces[1].Kind, dbg.Traces[2].Kind)
	}
	for _, tr := range dbg.Traces {
		if !tr.Slow {
			t.Errorf("%s trace not marked slow under 1ns threshold", tr.Kind)
		}
		if tr.RequestID == "" {
			t.Errorf("%s trace has no request id", tr.Kind)
		}
	}

	var slow DebugTracesResponse
	if code := getJSON(t, c, ts.URL+"/debug/traces?slow=1&n=2", &slow); code != http.StatusOK {
		t.Fatalf("/debug/traces?slow=1: status %d", code)
	}
	if len(slow.Traces) != 2 {
		t.Errorf("slow view with n=2 returned %d traces", len(slow.Traces))
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "slow query") {
		t.Errorf("no slow-query log line emitted:\n%s", logs)
	}
	if !strings.Contains(logs, dbg.Traces[0].RequestID) {
		t.Errorf("slow-query log missing request id %q:\n%s", dbg.Traces[0].RequestID, logs)
	}
}

// TestDebugTracesNotSlow asserts the default threshold leaves fast
// requests unmarked and the slow view empty.
func TestDebugTracesNotSlow(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{}) // default 1s threshold: nothing here is slow
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, nil); code != http.StatusOK {
		t.Fatalf("discover: status %d", code)
	}
	var dbg DebugTracesResponse
	if code := getJSON(t, c, ts.URL+"/debug/traces?slow=1", &dbg); code != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", code)
	}
	if len(dbg.Traces) != 0 {
		t.Errorf("slow view has %d traces under the 1s threshold", len(dbg.Traces))
	}
	if dbg.SlowQueryThresholdMS != 1000 {
		t.Errorf("threshold %vms, want 1000", dbg.SlowQueryThresholdMS)
	}
}

// TestMetricsPhaseHistograms asserts /metrics grows the per-phase
// discovery histograms and the build-info gauge after traffic.
func TestMetricsPhaseHistograms(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, nil); code != http.StatusOK {
		t.Fatalf("discover: status %d", code)
	}
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if !strings.Contains(body, "squid_build_info{") {
		t.Error("/metrics missing squid_build_info")
	}
	for _, phase := range []string{"resolve", "selectivity", "abduce", "intersect"} {
		series := `squid_discover_phase_seconds_count{phase="` + phase + `"}`
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}
