package server

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports that a discovery request was shed because the
// admission queue was already full; clients should back off and retry
// (the HTTP layer maps it to 429 with a Retry-After hint).
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// admission bounds the number of concurrently running discoveries plus a
// short wait queue. Beyond MaxInFlight running requests, up to queue
// more may wait for a slot; anything past that is shed immediately with
// ErrOverloaded, keeping tail latency bounded under overload instead of
// letting a backlog build.
type admission struct {
	tokens chan struct{} // capacity = max in-flight
	queued atomic.Int64
	queue  int64

	// ewmaBits is the exponentially weighted moving average of observed
	// service time in seconds, stored as math.Float64bits so the update
	// is a lock-free compare-and-swap. Zero means "no observation yet".
	ewmaBits atomic.Uint64
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	return &admission{
		tokens: make(chan struct{}, maxInFlight),
		queue:  int64(queueDepth),
	}
}

// acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns ErrOverloaded when the queue is full
// and ctx's error when the caller's deadline expires while queued.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free slot, no queueing.
	select {
	case a.tokens <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.queue {
		a.queued.Add(-1)
		return ErrOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() { <-a.tokens }

// releaseAndObserve returns a slot and feeds the request's service time
// (measured from admission, not from arrival) into the moving average
// behind retryAfterSeconds.
func (a *admission) releaseAndObserve(admitted time.Time) {
	a.observe(time.Since(admitted))
	a.release()
}

// observe folds one service-time sample into the EWMA (α = 0.2: a few
// dozen requests dominate the estimate, so the hint tracks load shifts
// without jittering on one slow outlier).
func (a *admission) observe(d time.Duration) {
	s := d.Seconds()
	for {
		old := a.ewmaBits.Load()
		next := s
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*s
		}
		if a.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds estimates when a shed request would next find queue
// room: the work ahead of it (running plus queued requests) divided by
// the service rate (slots per average service time), rounded up and
// clamped to [1, 60]. Before any request has completed the estimate
// falls back to 1 second.
func (a *admission) retryAfterSeconds() int {
	avg := math.Float64frombits(a.ewmaBits.Load())
	if avg <= 0 {
		return 1
	}
	ahead := float64(len(a.tokens)) + float64(a.queued.Load())
	secs := math.Ceil(ahead * avg / float64(cap(a.tokens)))
	switch {
	case secs < 1:
		return 1
	case secs > 60:
		return 60
	}
	return int(secs)
}

// inFlight reports the number of currently claimed slots.
func (a *admission) inFlight() int { return len(a.tokens) }
