package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded reports that a discovery request was shed because the
// admission queue was already full; clients should back off and retry
// (the HTTP layer maps it to 429 with a Retry-After hint).
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// admission bounds the number of concurrently running discoveries plus a
// short wait queue. Beyond MaxInFlight running requests, up to queue
// more may wait for a slot; anything past that is shed immediately with
// ErrOverloaded, keeping tail latency bounded under overload instead of
// letting a backlog build.
type admission struct {
	tokens chan struct{} // capacity = max in-flight
	queued atomic.Int64
	queue  int64
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	return &admission{
		tokens: make(chan struct{}, maxInFlight),
		queue:  int64(queueDepth),
	}
}

// acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns ErrOverloaded when the queue is full
// and ctx's error when the caller's deadline expires while queued.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free slot, no queueing.
	select {
	case a.tokens <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.queue {
		a.queued.Add(-1)
		return ErrOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() { <-a.tokens }

// inFlight reports the number of currently claimed slots.
func (a *admission) inFlight() int { return len(a.tokens) }
