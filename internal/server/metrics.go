package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"squid/internal/buildinfo"
	"squid/internal/wal"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// resolve both index-backed sub-millisecond discoveries and multi-second
// cold paths.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// latencyHistogram is a fixed-bucket latency histogram (counts are
// per-bucket internally, rendered cumulative as the Prometheus
// exposition format expects).
type latencyHistogram struct {
	mu      sync.Mutex
	buckets []uint64 // one per latencyBuckets entry, plus +Inf at the end
	sum     float64
	count   uint64
}

func newLatencyHistogram() *latencyHistogram {
	return &latencyHistogram{buckets: make([]uint64, len(latencyBuckets)+1)}
}

func (h *latencyHistogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.buckets[i]++
	h.sum += seconds
	h.count++
}

// metrics is the server's observability state: request counters by route
// and status code, in-flight gauges, admission counters, and per-route
// latency histograms. All methods are safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[string]uint64            // "route\x00code" → count
	latency  map[string]*latencyHistogram // route → histogram

	phaseMu sync.Mutex
	phase   map[string]*latencyHistogram // discovery phase → histogram

	httpInFlight   atomic.Int64 // requests currently being served
	shedTotal      atomic.Uint64
	snapshotTotal  atomic.Uint64
	snapshotFailed atomic.Uint64
	snapshotUnix   atomic.Int64
	panicsTotal    atomic.Uint64 // handler panics contained by route()
}

// liveGauges are point-in-time readings sampled at scrape time from the
// admission controller and the αDB statistics.
type liveGauges struct {
	discoverInFlight int
	queueDepth       int64
	cacheHits        uint64
	cacheMisses      uint64
	cacheEntries     int
	epochSeq         uint64
	epochAgeSec      float64
	epochPublishes   uint64
	epochCombines    uint64

	// Epoch-chain GC health (always rendered).
	epochRetired       int64
	epochRetainedBytes int64

	// Write-ahead-log health; nil when the system runs without a WAL.
	wal *wal.Metrics
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]uint64),
		latency:  make(map[string]*latencyHistogram),
		phase:    make(map[string]*latencyHistogram),
	}
}

// observePhase lands one discovery's leaf-phase duration in the phase's
// histogram (squid_discover_phase_seconds). Phases materialize on first
// observation, so the scrape lists exactly the phases real traffic
// exercised.
func (m *metrics) observePhase(phase string, seconds float64) {
	m.phaseMu.Lock()
	h := m.phase[phase]
	if h == nil {
		h = newLatencyHistogram()
		m.phase[phase] = h
	}
	m.phaseMu.Unlock()
	h.observe(seconds)
}

func (m *metrics) record(route string, code int, seconds float64) {
	key := route + "\x00" + strconv.Itoa(code)
	m.mu.Lock()
	m.requests[key]++
	h := m.latency[route]
	if h == nil {
		h = newLatencyHistogram()
		m.latency[route] = h
	}
	m.mu.Unlock()
	h.observe(seconds)
}

// render writes the Prometheus text exposition. The gauges come from
// live readings the caller samples at scrape time, so /metrics reflects
// admission and cache health without the registry holding server state.
func (m *metrics) render(w *strings.Builder, live liveGauges) {
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Strings(reqKeys)
	routeKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		routeKeys = append(routeKeys, k)
	}
	sort.Strings(routeKeys)

	bi := buildinfo.Get()
	fmt.Fprintf(w, "# HELP squid_build_info Build identity of the running binary (the value is always 1; the labels carry the information).\n")
	fmt.Fprintf(w, "# TYPE squid_build_info gauge\n")
	fmt.Fprintf(w, "squid_build_info{go_version=%q,version=%q,revision=%q,modified=%q} 1\n",
		bi.GoVersion, bi.Version, bi.Revision, strconv.FormatBool(bi.Modified))

	fmt.Fprintf(w, "# HELP squid_http_requests_total HTTP requests served, by route and status code.\n")
	fmt.Fprintf(w, "# TYPE squid_http_requests_total counter\n")
	for _, k := range reqKeys {
		route, code, _ := strings.Cut(k, "\x00")
		fmt.Fprintf(w, "squid_http_requests_total{route=%q,code=%q} %d\n", route, code, m.requests[k])
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP squid_http_in_flight_requests Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE squid_http_in_flight_requests gauge\n")
	fmt.Fprintf(w, "squid_http_in_flight_requests %d\n", m.httpInFlight.Load())

	fmt.Fprintf(w, "# HELP squid_discoveries_in_flight Admitted discovery requests currently running.\n")
	fmt.Fprintf(w, "# TYPE squid_discoveries_in_flight gauge\n")
	fmt.Fprintf(w, "squid_discoveries_in_flight %d\n", live.discoverInFlight)

	fmt.Fprintf(w, "# HELP squid_admission_queue_depth Discovery requests waiting for an admission slot.\n")
	fmt.Fprintf(w, "# TYPE squid_admission_queue_depth gauge\n")
	fmt.Fprintf(w, "squid_admission_queue_depth %d\n", live.queueDepth)

	fmt.Fprintf(w, "# HELP squid_admission_shed_total Requests rejected with 429 because the admission queue was full.\n")
	fmt.Fprintf(w, "# TYPE squid_admission_shed_total counter\n")
	fmt.Fprintf(w, "squid_admission_shed_total %d\n", m.shedTotal.Load())

	fmt.Fprintf(w, "# HELP squid_snapshot_saves_total Snapshot saves completed (periodic and on-demand).\n")
	fmt.Fprintf(w, "# TYPE squid_snapshot_saves_total counter\n")
	fmt.Fprintf(w, "squid_snapshot_saves_total %d\n", m.snapshotTotal.Load())
	fmt.Fprintf(w, "# HELP squid_snapshot_failures_total Snapshot saves that failed (disk full, unwritable path).\n")
	fmt.Fprintf(w, "# TYPE squid_snapshot_failures_total counter\n")
	fmt.Fprintf(w, "squid_snapshot_failures_total %d\n", m.snapshotFailed.Load())
	if unix := m.snapshotUnix.Load(); unix > 0 {
		fmt.Fprintf(w, "# HELP squid_snapshot_last_save_unix Unix time of the last completed snapshot save.\n")
		fmt.Fprintf(w, "# TYPE squid_snapshot_last_save_unix gauge\n")
		fmt.Fprintf(w, "squid_snapshot_last_save_unix %d\n", unix)
	}

	fmt.Fprintf(w, "# HELP squid_selcache_hits_total Selectivity-cache hits since boot.\n")
	fmt.Fprintf(w, "# TYPE squid_selcache_hits_total counter\n")
	fmt.Fprintf(w, "squid_selcache_hits_total %d\n", live.cacheHits)
	fmt.Fprintf(w, "# HELP squid_selcache_misses_total Selectivity-cache misses since boot.\n")
	fmt.Fprintf(w, "# TYPE squid_selcache_misses_total counter\n")
	fmt.Fprintf(w, "squid_selcache_misses_total %d\n", live.cacheMisses)
	fmt.Fprintf(w, "# HELP squid_selcache_entries Live selectivity-cache entries.\n")
	fmt.Fprintf(w, "# TYPE squid_selcache_entries gauge\n")
	fmt.Fprintf(w, "squid_selcache_entries %d\n", live.cacheEntries)
	if total := live.cacheHits + live.cacheMisses; total > 0 {
		fmt.Fprintf(w, "# HELP squid_selcache_hit_ratio Selectivity-cache hit ratio since boot.\n")
		fmt.Fprintf(w, "# TYPE squid_selcache_hit_ratio gauge\n")
		fmt.Fprintf(w, "squid_selcache_hit_ratio %g\n", float64(live.cacheHits)/float64(total))
	}

	fmt.Fprintf(w, "# HELP squid_epoch_seq Sequence number of the current αDB epoch.\n")
	fmt.Fprintf(w, "# TYPE squid_epoch_seq gauge\n")
	fmt.Fprintf(w, "squid_epoch_seq %d\n", live.epochSeq)
	fmt.Fprintf(w, "# HELP squid_epoch_age_seconds Age of the current αDB epoch (time since the last copy-on-write publish).\n")
	fmt.Fprintf(w, "# TYPE squid_epoch_age_seconds gauge\n")
	fmt.Fprintf(w, "squid_epoch_age_seconds %g\n", live.epochAgeSec)
	fmt.Fprintf(w, "# HELP squid_epoch_publishes_total Copy-on-write epoch publishes since boot (one per insert batch).\n")
	fmt.Fprintf(w, "# TYPE squid_epoch_publishes_total counter\n")
	fmt.Fprintf(w, "squid_epoch_publishes_total %d\n", live.epochPublishes)
	fmt.Fprintf(w, "# HELP squid_epoch_combines_total Publishes that merged a concurrent disjoint writer's epoch at the combiner.\n")
	fmt.Fprintf(w, "# TYPE squid_epoch_combines_total counter\n")
	fmt.Fprintf(w, "squid_epoch_combines_total %d\n", live.epochCombines)
	fmt.Fprintf(w, "# HELP squid_epoch_retired Retired epochs not yet garbage-collected (readers or leaked discoveries pin them).\n")
	fmt.Fprintf(w, "# TYPE squid_epoch_retired gauge\n")
	fmt.Fprintf(w, "squid_epoch_retired %d\n", live.epochRetired)
	fmt.Fprintf(w, "# HELP squid_epoch_retained_bytes Estimated bytes of replaced relation versions pinned by retired epochs.\n")
	fmt.Fprintf(w, "# TYPE squid_epoch_retained_bytes gauge\n")
	fmt.Fprintf(w, "squid_epoch_retained_bytes %d\n", live.epochRetainedBytes)

	fmt.Fprintf(w, "# HELP squid_panics_total Handler panics contained by the serving layer.\n")
	fmt.Fprintf(w, "# TYPE squid_panics_total counter\n")
	fmt.Fprintf(w, "squid_panics_total %d\n", m.panicsTotal.Load())

	if wm := live.wal; wm != nil {
		fmt.Fprintf(w, "# HELP squid_wal_records_total Records appended to the write-ahead log since boot.\n")
		fmt.Fprintf(w, "# TYPE squid_wal_records_total counter\n")
		fmt.Fprintf(w, "squid_wal_records_total %d\n", wm.Records)
		fmt.Fprintf(w, "# HELP squid_wal_bytes_total Bytes appended to the write-ahead log since boot.\n")
		fmt.Fprintf(w, "# TYPE squid_wal_bytes_total counter\n")
		fmt.Fprintf(w, "squid_wal_bytes_total %d\n", wm.Bytes)
		fmt.Fprintf(w, "# HELP squid_wal_syncs_total fsync calls issued by the write-ahead log.\n")
		fmt.Fprintf(w, "# TYPE squid_wal_syncs_total counter\n")
		fmt.Fprintf(w, "squid_wal_syncs_total %d\n", wm.Syncs)
		fmt.Fprintf(w, "# HELP squid_wal_sync_failures_total fsync calls that failed (each poisons the log until reboot).\n")
		fmt.Fprintf(w, "# TYPE squid_wal_sync_failures_total counter\n")
		fmt.Fprintf(w, "squid_wal_sync_failures_total %d\n", wm.SyncFailures)
		fmt.Fprintf(w, "# HELP squid_wal_rotations_total Log rotations (one per completed snapshot checkpoint).\n")
		fmt.Fprintf(w, "# TYPE squid_wal_rotations_total counter\n")
		fmt.Fprintf(w, "squid_wal_rotations_total %d\n", wm.Rotations)
		fmt.Fprintf(w, "# HELP squid_wal_replayed_records Records replayed from the log at boot.\n")
		fmt.Fprintf(w, "# TYPE squid_wal_replayed_records gauge\n")
		fmt.Fprintf(w, "squid_wal_replayed_records %d\n", wm.ReplayedRecs)
		fmt.Fprintf(w, "# HELP squid_wal_truncated_bytes Torn-tail bytes discarded from the log at boot.\n")
		fmt.Fprintf(w, "# TYPE squid_wal_truncated_bytes gauge\n")
		fmt.Fprintf(w, "squid_wal_truncated_bytes %d\n", wm.TruncatedBytes)
		fmt.Fprintf(w, "# HELP squid_wal_last_seq Highest epoch sequence number appended to the log.\n")
		fmt.Fprintf(w, "# TYPE squid_wal_last_seq gauge\n")
		fmt.Fprintf(w, "squid_wal_last_seq %d\n", wm.LastSeq)
		failed := 0
		if wm.Failed {
			failed = 1
		}
		fmt.Fprintf(w, "# HELP squid_wal_failed 1 when the log is poisoned by a write or fsync failure and refuses appends.\n")
		fmt.Fprintf(w, "# TYPE squid_wal_failed gauge\n")
		fmt.Fprintf(w, "squid_wal_failed %d\n", failed)
	}

	fmt.Fprintf(w, "# HELP squid_request_duration_seconds Request latency by route.\n")
	fmt.Fprintf(w, "# TYPE squid_request_duration_seconds histogram\n")
	for _, route := range routeKeys {
		m.mu.Lock()
		h := m.latency[route]
		m.mu.Unlock()
		renderHistogram(w, "squid_request_duration_seconds", "route", route, h)
	}

	m.phaseMu.Lock()
	phaseKeys := make([]string, 0, len(m.phase))
	for k := range m.phase {
		phaseKeys = append(phaseKeys, k)
	}
	m.phaseMu.Unlock()
	sort.Strings(phaseKeys)
	if len(phaseKeys) > 0 {
		fmt.Fprintf(w, "# HELP squid_discover_phase_seconds Discovery latency by pipeline phase (leaf spans of the request trace; phases partition the request on the serial path).\n")
		fmt.Fprintf(w, "# TYPE squid_discover_phase_seconds histogram\n")
		for _, phase := range phaseKeys {
			m.phaseMu.Lock()
			h := m.phase[phase]
			m.phaseMu.Unlock()
			renderHistogram(w, "squid_discover_phase_seconds", "phase", phase, h)
		}
	}
}

// renderHistogram writes one labeled histogram series in the cumulative
// form the Prometheus exposition format expects.
func renderHistogram(w *strings.Builder, name, label, value string, h *latencyHistogram) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += h.buckets[i]
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
			name, label, value, strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	cum += h.buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, cum)
	fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, value, h.sum)
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, value, h.count)
}
