// Package server implements the network serving layer: an HTTP/JSON API
// over a squid.System exposing discovery, query execution, the write
// path, and introspection, with production behaviors built in — bounded
// admission control with fast load shedding, per-request timeouts wired
// to context cancellation, warm boot and atomic snapshot re-save, and
// graceful drain.
//
// Endpoints:
//
//	POST /v1/discover        one example set → abduced query + output
//	POST /v1/discover/batch  many example sets → System.DiscoverBatch
//	POST /v1/execute         logical query plan (JSON form) → tuples
//	POST /v1/insert          one row (entity or fact, auto-dispatched)
//	POST /v1/insert/batch    many rows in one αDB critical section
//	POST /v1/snapshot        atomic on-demand snapshot save
//	GET  /v1/stats           αDB statistics (Fig 18 + cache health)
//	GET  /healthz            liveness; 503 while draining
//	GET  /metrics            Prometheus text exposition
package server

import (
	"fmt"
	"math"

	"squid"
	"squid/internal/engine"
	"squid/internal/relation"
)

// QueryJSON is the wire form of a logical engine query. Values follow
// JSON typing: strings stay strings, numbers become integers when they
// are integral and floats otherwise, null is SQL NULL.
type QueryJSON struct {
	From          []string     `json:"from"`
	Joins         []JoinJSON   `json:"joins,omitempty"`
	Preds         []PredJSON   `json:"preds,omitempty"`
	Select        []ColRefJSON `json:"select"`
	Distinct      bool         `json:"distinct,omitempty"`
	GroupBy       []ColRefJSON `json:"group_by,omitempty"`
	HavingCountGE int          `json:"having_count_ge,omitempty"`
	Intersect     []QueryJSON  `json:"intersect,omitempty"`
}

// JoinJSON is an equi-join condition on the wire.
type JoinJSON struct {
	LeftRel  string `json:"left_rel"`
	LeftCol  string `json:"left_col"`
	RightRel string `json:"right_rel"`
	RightCol string `json:"right_col"`
}

// ColRefJSON names a relation column on the wire.
type ColRefJSON struct {
	Rel string `json:"rel"`
	Col string `json:"col"`
}

// PredJSON is a selection predicate on the wire; Op is one of
// "=", ">=", "<=", ">", "<", "in".
type PredJSON struct {
	Rel    string `json:"rel"`
	Col    string `json:"col"`
	Op     string `json:"op"`
	Value  any    `json:"value,omitempty"`
	Values []any  `json:"values,omitempty"`
}

// opFromString parses the wire operator.
func opFromString(s string) (engine.Op, error) {
	switch s {
	case "=":
		return engine.OpEq, nil
	case ">=":
		return engine.OpGE, nil
	case "<=":
		return engine.OpLE, nil
	case ">":
		return engine.OpGT, nil
	case "<":
		return engine.OpLT, nil
	case "in", "IN":
		return engine.OpIn, nil
	default:
		return 0, fmt.Errorf("unknown operator %q (want =, >=, <=, >, <, or in)", s)
	}
}

func opToString(op engine.Op) string {
	if op == engine.OpIn {
		return "in"
	}
	return op.String()
}

// valueFromJSON converts a decoded JSON scalar to a relation value.
// Integral numbers become integers (JSON has no int/float distinction;
// the engine compares numerics cross-kind, so this is lossless for the
// query class).
func valueFromJSON(v any) (relation.Value, error) {
	switch x := v.(type) {
	case nil:
		return relation.Null, nil
	case string:
		return relation.StringVal(x), nil
	case float64:
		if x == math.Trunc(x) && !math.IsInf(x, 0) {
			return relation.IntVal(int64(x)), nil
		}
		return relation.FloatVal(x), nil
	case bool:
		return relation.Value{}, fmt.Errorf("boolean values are not part of the query class")
	default:
		return relation.Value{}, fmt.Errorf("unsupported value %v (%T)", v, v)
	}
}

// valueToJSON converts a relation value to its JSON scalar form.
func valueToJSON(v relation.Value) any {
	switch {
	case v.IsNull():
		return nil
	case v.IsInt():
		return v.Int()
	case v.IsString():
		return v.Str()
	default:
		return v.Float()
	}
}

// valueForColumn converts a JSON scalar to a value of the column's
// declared type, the strict conversion the write path needs (an Int
// column rejects 3.5, a Float column stores 1980 as 1980.0).
func valueForColumn(col *relation.Column, v any) (relation.Value, error) {
	if v == nil {
		return relation.Null, nil
	}
	switch col.Type {
	case relation.Int:
		x, ok := v.(float64)
		if !ok || x != math.Trunc(x) || math.IsInf(x, 0) {
			return relation.Value{}, fmt.Errorf("column %q wants an integer, got %v", col.Name, v)
		}
		return relation.IntVal(int64(x)), nil
	case relation.Float:
		x, ok := v.(float64)
		if !ok {
			return relation.Value{}, fmt.Errorf("column %q wants a number, got %v", col.Name, v)
		}
		return relation.FloatVal(x), nil
	case relation.String:
		x, ok := v.(string)
		if !ok {
			return relation.Value{}, fmt.Errorf("column %q wants a string, got %v", col.Name, v)
		}
		return relation.StringVal(x), nil
	}
	return relation.Value{}, fmt.Errorf("column %q has unknown type", col.Name)
}

// ToEngineQuery converts the wire form to an executable logical query.
func (q *QueryJSON) ToEngineQuery() (*engine.Query, error) {
	out := &engine.Query{
		From:          append([]string(nil), q.From...),
		Distinct:      q.Distinct,
		HavingCountGE: q.HavingCountGE,
	}
	for _, j := range q.Joins {
		out.Joins = append(out.Joins, engine.Join{
			LeftRel: j.LeftRel, LeftCol: j.LeftCol,
			RightRel: j.RightRel, RightCol: j.RightCol,
		})
	}
	for i, p := range q.Preds {
		op, err := opFromString(p.Op)
		if err != nil {
			return nil, fmt.Errorf("pred %d: %w", i, err)
		}
		pred := engine.Pred{Rel: p.Rel, Col: p.Col, Op: op}
		if op == engine.OpIn {
			for _, raw := range p.Values {
				v, err := valueFromJSON(raw)
				if err != nil {
					return nil, fmt.Errorf("pred %d: %w", i, err)
				}
				pred.Vals = append(pred.Vals, v)
			}
		} else {
			v, err := valueFromJSON(p.Value)
			if err != nil {
				return nil, fmt.Errorf("pred %d: %w", i, err)
			}
			pred.Val = v
		}
		out.Preds = append(out.Preds, pred)
	}
	for _, s := range q.Select {
		out.Select = append(out.Select, engine.ColRef{Rel: s.Rel, Col: s.Col})
	}
	for _, g := range q.GroupBy {
		out.GroupBy = append(out.GroupBy, engine.ColRef{Rel: g.Rel, Col: g.Col})
	}
	for i := range q.Intersect {
		sub, err := q.Intersect[i].ToEngineQuery()
		if err != nil {
			return nil, fmt.Errorf("intersect %d: %w", i, err)
		}
		out.Intersect = append(out.Intersect, sub)
	}
	return out, nil
}

// FromEngineQuery converts a logical query to its wire form; clients
// (the load generator, tooling) use it to execute a plan returned by
// discovery over the network.
//
//lint:ignore unusedexport public wire-codec API, the documented inverse of ToEngineQuery (README serving section)
func FromEngineQuery(q *squid.Query) QueryJSON {
	out := QueryJSON{
		From:          append([]string(nil), q.From...),
		Distinct:      q.Distinct,
		HavingCountGE: q.HavingCountGE,
	}
	for _, j := range q.Joins {
		out.Joins = append(out.Joins, JoinJSON{
			LeftRel: j.LeftRel, LeftCol: j.LeftCol,
			RightRel: j.RightRel, RightCol: j.RightCol,
		})
	}
	for _, p := range q.Preds {
		pj := PredJSON{Rel: p.Rel, Col: p.Col, Op: opToString(p.Op)}
		if p.Op == engine.OpIn {
			for _, v := range p.Vals {
				pj.Values = append(pj.Values, valueToJSON(v))
			}
		} else {
			pj.Value = valueToJSON(p.Val)
		}
		out.Preds = append(out.Preds, pj)
	}
	for _, s := range q.Select {
		out.Select = append(out.Select, ColRefJSON{Rel: s.Rel, Col: s.Col})
	}
	for _, g := range q.GroupBy {
		out.GroupBy = append(out.GroupBy, ColRefJSON{Rel: g.Rel, Col: g.Col})
	}
	for _, sub := range q.Intersect {
		out.Intersect = append(out.Intersect, FromEngineQuery(sub))
	}
	return out
}
