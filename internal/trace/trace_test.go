package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledSpanIsFree asserts the whole disabled-path API — context
// miss, Child, Add, End, NewContext on a zero Span — performs zero
// allocations. This is the package-local half of the contract; the
// repo-level benchmark asserts the same through the full Discover path.
func TestDisabledSpanIsFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFrom(ctx)
		if sp.Active() {
			t.Fatal("span unexpectedly active")
		}
		child := sp.Child(PhaseResolve, "x")
		child.Add(CounterRows, 7)
		child.End()
		if NewContext(ctx, sp) != ctx {
			t.Fatal("NewContext must return ctx unchanged for a zero span")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestRecorderSpanTree(t *testing.T) {
	r := NewRecorder(0)
	root := r.Root(PhaseDiscover, "")
	res := root.Child(PhaseResolve, "")
	res.Add(CounterCandidates, 2)
	res.End()
	cand := root.Child(PhaseCandidate, "person.name")
	ctxs := cand.Child(PhaseContexts, "")
	ctxs.Add(CounterContexts, 5)
	ctxs.End()
	cand.End()
	root.End()

	tr := r.Finish("discover", "req-1")
	if tr.Kind != "discover" || tr.RequestID != "req-1" {
		t.Fatalf("trace identity = %q/%q", tr.Kind, tr.RequestID)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(tr.Spans))
	}
	if tr.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped)
	}
	want := "discover\n" +
		"  resolve {candidates=2}\n" +
		"  candidate person.name\n" +
		"    contexts {contexts=5}\n"
	if got := tr.Structure(); got != want {
		t.Fatalf("structure:\n%s\nwant:\n%s", got, want)
	}
	// Leaf-only totals: candidate and discover are containers here.
	totals := tr.PhaseTotals()
	if _, ok := totals["discover"]; ok {
		t.Fatal("container span counted in PhaseTotals")
	}
	for _, leaf := range []string{"resolve", "contexts"} {
		if _, ok := totals[leaf]; !ok {
			t.Fatalf("leaf phase %q missing from totals %v", leaf, totals)
		}
	}
	j := tr.JSON()
	if len(j.Spans) != 1 || j.Spans[0].Phase != "discover" {
		t.Fatalf("json roots = %+v", j.Spans)
	}
	var sum float64
	for _, v := range j.PhaseMS {
		sum += v
	}
	if sum > j.WallMS {
		t.Fatalf("phase_ms sum %.3f exceeds wall_ms %.3f", sum, j.WallMS)
	}
}

// TestStructureIgnoresBeginOrder asserts sibling order in Structure is
// (phase, label), not begin order — the property that makes structure
// byte-identical across worker schedules.
func TestStructureIgnoresBeginOrder(t *testing.T) {
	build := func(order []string) string {
		r := NewRecorder(0)
		root := r.Root(PhaseDiscover, "")
		for _, label := range order {
			c := root.Child(PhaseCandidate, label)
			c.End()
		}
		root.End()
		return r.Finish("discover", "").Structure()
	}
	a := build([]string{"person.name", "movie.title", "cast.role"})
	b := build([]string{"cast.role", "person.name", "movie.title"})
	if a != b {
		t.Fatalf("structure depends on begin order:\n%s\nvs\n%s", a, b)
	}
}

func TestNewRecorderDefaultCapacity(t *testing.T) {
	if r := NewRecorder(0); len(r.spans) != DefaultCapacity {
		t.Fatalf("NewRecorder(0) capacity %d, want DefaultCapacity %d", len(r.spans), DefaultCapacity)
	}
}

func TestRecorderOverflowDrops(t *testing.T) {
	r := NewRecorder(2)
	root := r.Root(PhaseDiscover, "")
	kept := root.Child(PhaseResolve, "")
	dropped := root.Child(PhaseAbduce, "")
	if dropped.Active() {
		t.Fatal("overflow span must be inactive")
	}
	dropped.Add(CounterRows, 1) // must be safe no-ops
	dropped.End()
	kept.End()
	root.End()
	tr := r.Finish("discover", "")
	if len(tr.Spans) != 2 || tr.Dropped != 1 {
		t.Fatalf("spans=%d dropped=%d, want 2/1", len(tr.Spans), tr.Dropped)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	root := r.Root(PhaseDiscover, "")
	ctx := NewContext(context.Background(), root)
	got := SpanFrom(ctx)
	if !got.Active() || got != root {
		t.Fatalf("SpanFrom = %+v, want the attached span", got)
	}
	root.End()
}

// TestRecorderConcurrentSpans drives one recorder from many goroutines
// (the worker-pool shape) under -race: concurrent Child claims,
// counter bumps on a shared parent, and Ends.
func TestRecorderConcurrentSpans(t *testing.T) {
	r := NewRecorder(1024)
	root := r.Root(PhaseDiscover, "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				sp := root.Child(PhaseRowSet, "w")
				sp.Add(CounterRows, 1)
				root.Add(CounterCacheHits, 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	tr := r.Finish("discover", "")
	if len(tr.Spans) != 1+8*64 {
		t.Fatalf("got %d spans, want %d", len(tr.Spans), 1+8*64)
	}
	if got := tr.Spans[0].Counters["cache_hits"]; got != 8*64 {
		t.Fatalf("root cache_hits = %d, want %d", got, 8*64)
	}
}

// TestRingConcurrent hammers a small ring from concurrent writers and
// readers under -race; afterwards the ring must hold exactly the most
// recent traces.
func TestRingConcurrent(t *testing.T) {
	g := NewRing(8)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				g.Put(&Trace{Kind: "discover", Start: time.Unix(0, int64(i))})
			}
		}()
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range g.Recent(0) {
				if tr.Kind != "discover" {
					t.Error("corrupt trace read from ring")
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()

	if g.Total() != 4*500 {
		t.Fatalf("total = %d, want %d", g.Total(), 4*500)
	}
	recent := g.Recent(0)
	if len(recent) != 8 {
		t.Fatalf("recent = %d traces, want 8", len(recent))
	}
	if got := g.Recent(3); len(got) != 3 {
		t.Fatalf("Recent(3) = %d traces", len(got))
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	g := NewRing(16)
	g.Put(&Trace{Kind: "a"})
	g.Put(&Trace{Kind: "b"})
	got := g.Recent(0)
	if len(got) != 2 || got[0].Kind != "b" || got[1].Kind != "a" {
		t.Fatalf("recent = %+v", got)
	}
}

func TestPhaseAndCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < numPhases; p++ {
		name := p.String()
		if name == "" || strings.HasPrefix(name, "phase(") || seen[name] {
			t.Fatalf("bad or duplicate phase name %q", name)
		}
		seen[name] = true
	}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Fatalf("bad counter name %q", name)
		}
	}
}
