// Package trace is squid's wait-free, allocation-conscious span
// recorder: the per-request attribution layer the serving stack and the
// bench harness share. The paper's experiments (§7) break discovery
// latency into phases — candidate enumeration, semantic-context
// discovery, selectivity computation, filter intersection — and this
// package makes the same breakdown observable per production request.
//
// The contract, mirroring the rest of the codebase's "state it, then
// machine-check it" convention:
//
//   - Disabled is free. A zero Span (no recorder) is the library
//     default; every method on it is a nil-check and a return, the
//     context plumbing stores nothing, and an allocation benchmark
//     asserts the whole Discover path adds 0 allocs/op without a
//     recorder.
//   - Enabled is wait-free. Begin claims a preallocated slot with one
//     atomic increment; counters are atomic adds; no span operation
//     takes a lock or blocks another goroutine — instrumentation can
//     ride the intra-discovery worker pool without serializing it.
//   - Structure is deterministic. Span structure (phases, nesting,
//     labels, counters) is byte-identical across Params.Workers
//     settings; only durations vary. Structure renders exactly that
//     duration-free form, and a test asserts the byte identity.
//
// A span that outlives its recorder's capacity is dropped (counted in
// Trace.Dropped), never reallocated: overflow degrades visibility, not
// latency.
package trace

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Phase types a span: which stage of the online path it measures. The
// enum order is the canonical rendering order of sibling spans.
type Phase uint8

const (
	// PhaseDiscover is the root of one discovery request.
	PhaseDiscover Phase = iota
	// PhaseResolve is candidate base-query enumeration: the inverted
	// index resolving examples to (relation, column) matches.
	PhaseResolve
	// PhaseCandidate groups one candidate base query's abduction.
	PhaseCandidate
	// PhaseContexts is semantic-context discovery (§6.1.2).
	PhaseContexts
	// PhaseSelectivity is the candidate-filter selectivity prefetch.
	PhaseSelectivity
	// PhaseAbduce is Algorithm 1's serial decision loop.
	PhaseAbduce
	// PhaseRows groups the selected filters' row-set prefetch.
	PhaseRows
	// PhaseRowSet is one selected filter's row-set materialization.
	PhaseRowSet
	// PhaseIntersect is the selectivity-ordered bitset intersection.
	PhaseIntersect
	// PhaseExecute is the root of one engine plan execution.
	PhaseExecute
	// PhaseStage is one engine executor stage (scan, join, aggregate,
	// project), labeled with the stage's relation.
	PhaseStage
	// PhaseInsert is the root of one insert request.
	PhaseInsert
	// PhasePublishWait is time spent waiting on per-relation writer
	// locks before a copy-on-write apply may start.
	PhasePublishWait
	// PhaseApply is the copy-on-write apply of an insert batch.
	PhaseApply
	// PhasePublish is the epoch publish (the combiner critical section).
	PhasePublish
	// PhaseWALAppend is the write-ahead-log append inside the publish.
	PhaseWALAppend
	// PhaseWALBarrier is the WAL durability barrier an acknowledged
	// insert waits on.
	PhaseWALBarrier

	numPhases
)

var phaseNames = [numPhases]string{
	"discover", "resolve", "candidate", "contexts", "selectivity",
	"abduce", "rows", "rowset", "intersect", "execute", "stage",
	"insert", "publish_wait", "apply", "publish", "wal_append",
	"wal_barrier",
}

// String returns the phase's wire name (the `phase` label of
// squid_discover_phase_seconds and the `phase` field of trace JSON).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Counter types a per-span counter.
type Counter uint8

const (
	// CounterCandidates counts candidate (relation, column) matches.
	CounterCandidates Counter = iota
	// CounterProperties counts semantic properties walked.
	CounterProperties
	// CounterContexts counts semantic contexts (candidate filters).
	CounterContexts
	// CounterSelected counts filters Algorithm 1 included.
	CounterSelected
	// CounterRows counts result rows of the span's stage.
	CounterRows
	// CounterCacheHits counts selectivity-cache hits under the span.
	CounterCacheHits
	// CounterCacheMisses counts selectivity-cache misses under the span.
	CounterCacheMisses
	// CounterCacheStores counts selectivity-cache stores under the span.
	CounterCacheStores
	// CounterEpochSeq records the pinned αDB epoch sequence number.
	CounterEpochSeq

	numCounters
)

var counterNames = [numCounters]string{
	"candidates", "properties", "contexts", "selected", "rows",
	"cache_hits", "cache_misses", "cache_stores", "epoch_seq",
}

// String returns the counter's wire name.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// DefaultCapacity is the recorder's span capacity when NewRecorder is
// given 0: generous for one discovery (a handful of candidates × a
// handful of phases plus per-filter row-set spans) while keeping a
// recorder allocation small and constant.
const DefaultCapacity = 512

// spanData is one recorded span. Each slot is written by the goroutine
// that began the span (begin/End) except counters, which concurrent
// workers bump atomically; readers (Finish) run strictly after the
// request's barriers.
type spanData struct {
	phase    Phase
	parent   int32 // slot index of the parent, -1 for roots
	label    string
	start    int64              // ns since recorder start (monotonic)
	dur      int64              // ns, set by End (atomic)
	counters [numCounters]int64 // atomic
}

// Recorder collects the spans of one request. Begin operations are
// wait-free: a slot claim is one atomic increment into a preallocated
// array, and overflow drops the span (counted) instead of growing.
// Create one per traced request with NewRecorder, hand its root span to
// the pipeline via NewContext, and call Finish after the request's work
// has joined (all worker goroutines done) to extract the Trace.
type Recorder struct {
	start   time.Time
	spans   []spanData
	next    atomic.Int32
	dropped atomic.Int64
}

// NewRecorder creates a recorder with the given span capacity
// (0 = DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{start: time.Now(), spans: make([]spanData, capacity)}
}

// Root begins a top-level span.
func (r *Recorder) Root(phase Phase, label string) Span {
	if r == nil {
		return Span{}
	}
	return r.begin(phase, -1, label)
}

func (r *Recorder) begin(phase Phase, parent int32, label string) Span {
	id := r.next.Add(1) - 1
	if int(id) >= len(r.spans) {
		r.dropped.Add(1)
		return Span{}
	}
	sd := &r.spans[id]
	sd.phase = phase
	sd.parent = parent
	sd.label = label
	atomic.StoreInt64(&sd.start, int64(time.Since(r.start)))
	return Span{r: r, id: id}
}

// Span is a handle on one recorded span — a small value, copied freely.
// The zero Span is the disabled recorder: every method on it is a
// nil-check and a return, so uninstrumented callers (and the whole
// library path without a server) pay nothing. Callers computing a label
// should guard the computation with Active, so the disabled path does
// not even concatenate the string.
type Span struct {
	r  *Recorder
	id int32
}

// Active reports whether the span records anything; use it to guard
// label construction or other trace-only work.
func (s Span) Active() bool { return s.r != nil }

// Child begins a sub-span. On the zero Span it is a no-op returning
// another zero Span, so instrumentation needs no conditionals.
func (s Span) Child(phase Phase, label string) Span {
	if s.r == nil {
		return Span{}
	}
	return s.r.begin(phase, s.id, label)
}

// End stamps the span's duration. Call exactly once, on every return
// path (the spanend analyzer machine-checks this); End on the zero Span
// is a no-op.
func (s Span) End() {
	if s.r == nil {
		return
	}
	sd := &s.r.spans[s.id]
	atomic.StoreInt64(&sd.dur, int64(time.Since(s.r.start))-atomic.LoadInt64(&sd.start))
}

// Add bumps a counter on the span; safe from concurrent workers.
func (s Span) Add(c Counter, delta int64) {
	if s.r == nil || delta == 0 {
		return
	}
	atomic.AddInt64(&s.r.spans[s.id].counters[c], delta)
}

// ctxKey carries a Span through a context. The key is a zero-size type:
// the lookup on an untraced context allocates nothing.
type ctxKey struct{}

// NewContext attaches a span to ctx. Attaching the zero Span returns
// ctx unchanged — the disabled path allocates no context wrapper.
func NewContext(ctx context.Context, s Span) context.Context {
	if s.r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the span attached to ctx, or the zero Span. The
// miss path performs no allocation, so untraced requests stay free.
func SpanFrom(ctx context.Context) Span {
	s, _ := ctx.Value(ctxKey{}).(Span)
	return s
}

// SpanInfo is one finalized span of a Trace.
type SpanInfo struct {
	Phase  Phase
	Label  string
	Parent int32 // index into Trace.Spans, -1 for roots
	Start  time.Duration
	Dur    time.Duration
	// Counters holds the span's nonzero counters by wire name.
	Counters map[string]int64
}

// Trace is one request's finalized span set, as stored in the ring and
// rendered over HTTP.
type Trace struct {
	// Kind names the request type ("discover", "execute", "insert").
	Kind string
	// RequestID is the serving layer's per-request id, when traced
	// through HTTP.
	RequestID string
	// Start is the recorder's creation time (wall clock); durations are
	// monotonic offsets from it.
	Start time.Time
	// Wall is the recorder's total lifetime (creation to Finish).
	Wall time.Duration
	// Slow marks traces past the serving layer's slow-query threshold.
	Slow bool
	// Dropped counts spans lost to recorder-capacity overflow.
	Dropped int64
	// Spans holds the recorded spans in begin order.
	Spans []SpanInfo
}

// Finish extracts the recorded spans into an immutable Trace. Call it
// only after the request's work has joined — every worker goroutine
// that touched the recorder must have finished (the pipeline's
// WaitGroup barriers provide this).
func (r *Recorder) Finish(kind, requestID string) *Trace {
	n := int(r.next.Load())
	if n > len(r.spans) {
		n = len(r.spans)
	}
	t := &Trace{
		Kind:      kind,
		RequestID: requestID,
		Start:     r.start,
		Wall:      time.Since(r.start),
		Dropped:   r.dropped.Load(),
		Spans:     make([]SpanInfo, n),
	}
	for i := 0; i < n; i++ {
		sd := &r.spans[i]
		info := SpanInfo{
			Phase:  sd.phase,
			Label:  sd.label,
			Parent: sd.parent,
			Start:  time.Duration(atomic.LoadInt64(&sd.start)),
			Dur:    time.Duration(atomic.LoadInt64(&sd.dur)),
		}
		for c := Counter(0); c < numCounters; c++ {
			if v := atomic.LoadInt64(&sd.counters[c]); v != 0 {
				if info.Counters == nil {
					info.Counters = make(map[string]int64)
				}
				info.Counters[c.String()] = v
			}
		}
		t.Spans[i] = info
	}
	return t
}

// PhaseTotals sums the durations of the trace's leaf spans by phase.
// Only leaves count, so a grouping span (discover, candidate, rows)
// never double-counts its children's time; on a serial trace the totals
// partition the request and their sum is bounded by the wall time.
func (t *Trace) PhaseTotals() map[string]time.Duration {
	if len(t.Spans) == 0 {
		return nil
	}
	hasChild := make([]bool, len(t.Spans))
	for _, sp := range t.Spans {
		if sp.Parent >= 0 && int(sp.Parent) < len(hasChild) {
			hasChild[sp.Parent] = true
		}
	}
	out := make(map[string]time.Duration)
	for i, sp := range t.Spans {
		if !hasChild[i] {
			out[sp.Phase.String()] += sp.Dur
		}
	}
	return out
}

// children returns, per span index, the child indexes sorted by
// (phase, label, begin order) — the deterministic sibling order both
// renderings use. roots lists the top-level spans in the same order.
func (t *Trace) children() (kids [][]int32, roots []int32) {
	kids = make([][]int32, len(t.Spans))
	for i, sp := range t.Spans {
		if sp.Parent >= 0 && int(sp.Parent) < len(t.Spans) {
			kids[sp.Parent] = append(kids[sp.Parent], int32(i))
		} else {
			roots = append(roots, int32(i))
		}
	}
	less := func(list []int32) func(a, b int) bool {
		return func(a, b int) bool {
			x, y := t.Spans[list[a]], t.Spans[list[b]]
			if x.Phase != y.Phase {
				return x.Phase < y.Phase
			}
			if x.Label != y.Label {
				return x.Label < y.Label
			}
			return list[a] < list[b]
		}
	}
	for i := range kids {
		sort.Slice(kids[i], less(kids[i]))
	}
	sort.Slice(roots, less(roots))
	return kids, roots
}

// Structure renders the duration-free form of the trace: phases,
// labels, nesting, and counters, with siblings in (phase, label) order
// and counters in name order. It is byte-identical across
// Params.Workers settings — the determinism contract the tests assert —
// because worker scheduling can only reorder span begin order, never
// the structure.
func (t *Trace) Structure() string {
	kids, roots := t.children()
	var b strings.Builder
	var walk func(id int32, depth int)
	walk = func(id int32, depth int) {
		sp := t.Spans[id]
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sp.Phase.String())
		if sp.Label != "" {
			b.WriteByte(' ')
			b.WriteString(sp.Label)
		}
		if len(sp.Counters) > 0 {
			names := make([]string, 0, len(sp.Counters))
			for k := range sp.Counters {
				names = append(names, k)
			}
			sort.Strings(names)
			b.WriteString(" {")
			for i, k := range names {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%d", k, sp.Counters[k])
			}
			b.WriteByte('}')
		}
		b.WriteByte('\n')
		for _, c := range kids[id] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// SpanJSON is the wire form of one span subtree.
type SpanJSON struct {
	Phase    string           `json:"phase"`
	Label    string           `json:"label,omitempty"`
	StartMS  float64          `json:"start_ms"`
	DurMS    float64          `json:"dur_ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*SpanJSON      `json:"children,omitempty"`
}

// TraceJSON is the wire form of a Trace: the span tree plus the
// leaf-phase duration totals, whose sum is bounded by wall_ms on serial
// traces (the `?trace=1` acceptance check).
type TraceJSON struct {
	Kind         string             `json:"kind"`
	RequestID    string             `json:"request_id,omitempty"`
	StartUnixMS  int64              `json:"start_unix_ms"`
	WallMS       float64            `json:"wall_ms"`
	Slow         bool               `json:"slow,omitempty"`
	DroppedSpans int64              `json:"dropped_spans,omitempty"`
	PhaseMS      map[string]float64 `json:"phase_ms,omitempty"`
	Spans        []*SpanJSON        `json:"spans"`
}

// JSON renders the trace for HTTP responses and artifacts.
func (t *Trace) JSON() *TraceJSON {
	out := &TraceJSON{
		Kind:         t.Kind,
		RequestID:    t.RequestID,
		StartUnixMS:  t.Start.UnixMilli(),
		WallMS:       ms(t.Wall),
		Slow:         t.Slow,
		DroppedSpans: t.Dropped,
	}
	if totals := t.PhaseTotals(); len(totals) > 0 {
		out.PhaseMS = make(map[string]float64, len(totals))
		for k, v := range totals {
			out.PhaseMS[k] = ms(v)
		}
	}
	kids, roots := t.children()
	var build func(id int32) *SpanJSON
	build = func(id int32) *SpanJSON {
		sp := t.Spans[id]
		j := &SpanJSON{
			Phase:    sp.Phase.String(),
			Label:    sp.Label,
			StartMS:  ms(sp.Start),
			DurMS:    ms(sp.Dur),
			Counters: sp.Counters,
		}
		for _, c := range kids[id] {
			j.Children = append(j.Children, build(c))
		}
		return j
	}
	for _, r := range roots {
		out.Spans = append(out.Spans, build(r))
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
