package trace

import "sync/atomic"

// Ring is a fixed-size lock-free buffer of finished traces: the
// System-wide store `GET /debug/traces` reads. Writers claim a slot
// with one atomic increment and publish the trace with one atomic
// pointer store — no locks, no allocation beyond the trace itself —
// so recording a finished trace never backpressures the serving path.
// A reader may miss a trace that is being overwritten concurrently;
// the ring is a diagnostic window, not a durable log.
type Ring struct {
	slots []atomic.Pointer[Trace]
	n     atomic.Uint64
}

// NewRing creates a ring holding the most recent `size` traces
// (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], size)}
}

// Put publishes a finished trace, overwriting the oldest slot once the
// ring has wrapped. Nil traces are ignored.
func (g *Ring) Put(t *Trace) {
	if g == nil || t == nil {
		return
	}
	i := g.n.Add(1) - 1
	g.slots[i%uint64(len(g.slots))].Store(t)
}

// Total returns the number of traces ever published.
func (g *Ring) Total() uint64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// Recent returns up to max traces, newest first. max <= 0 means the
// whole ring.
func (g *Ring) Recent(max int) []*Trace {
	if g == nil {
		return nil
	}
	size := len(g.slots)
	if max <= 0 || max > size {
		max = size
	}
	head := g.n.Load()
	out := make([]*Trace, 0, max)
	for k := 0; k < size && len(out) < max; k++ {
		if head < uint64(k)+1 {
			break
		}
		// Walk backwards from the most recently claimed slot.
		idx := (head - 1 - uint64(k)) % uint64(size)
		if t := g.slots[idx].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}
