// Package snapshot implements the versioned binary format that persists
// an abduction-ready database to disk, so a warm boot is O(read) instead
// of O(rebuild). The format serializes the base database (with its
// per-column string dictionaries), the materialized derived relations,
// the inverted entity-lookup index, and every per-property statistic,
// including the sorted numeric indexes; hash indexes are rebuilt on load
// in a single O(n) pass because Go maps do not round-trip profitably.
//
// # Version-compatibility policy
//
// Every snapshot starts with the magic "SQAS" and a format version
// (currently Version). The policy is strict equality: a reader only
// accepts snapshots whose version matches its own, and returns
// ErrVersion otherwise — snapshots are cheap, derived artifacts, so the
// upgrade path is "rebuild from the source database and save again",
// never in-place migration. Any change to the byte layout (new fields,
// reordered sections, changed encodings) MUST bump Version; fields may
// never be re-interpreted under an existing version number. Snapshots
// are architecture-independent: all integers are varint-encoded
// little-endian style, floats are IEEE-754 bit patterns.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic identifies a SQuID αDB snapshot stream.
const Magic = "SQAS"

// Version is the current snapshot format version. Bump on ANY layout
// change (see the package comment for the compatibility policy).
// History: v2 added the αDB epoch sequence number (the write-ahead
// log's replay anchor).
const Version = 2

// ErrVersion reports a snapshot whose format version does not match
// this build's Version.
var ErrVersion = errors.New("snapshot: unsupported format version")

// maxLen caps length prefixes on read, bounding allocations when a
// corrupt or truncated stream is fed to the reader.
const maxLen = 1 << 28

// Writer encodes snapshot primitives with a sticky error, so encoding
// code reads as straight-line writes and checks the error once. Slices
// encode as one contiguous block (element count, byte length, payload),
// so readers decode from a single buffered read instead of per-byte
// varint pulls — the difference between an O(read) warm boot and one
// dominated by bufio call overhead.
type Writer struct {
	w       *bufio.Writer
	err     error
	buf     [binary.MaxVarintLen64]byte
	scratch []byte
}

// NewWriter creates a buffered snapshot writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush flushes the underlying buffer and returns the sticky error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Header writes the magic and format version.
func (w *Writer) Header() {
	w.raw([]byte(Magic))
	w.Uvarint(Version)
}

func (w *Writer) raw(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.raw(w.buf[:n])
}

// Varint writes a signed (zigzag) varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.raw(w.buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Bool writes a single byte 0/1.
func (w *Writer) Bool(b bool) {
	if b {
		w.raw([]byte{1})
	} else {
		w.raw([]byte{0})
	}
}

// Float writes an IEEE-754 bit pattern.
func (w *Writer) Float(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.raw(b[:])
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.raw([]byte(s))
}

// block writes a varint-encoded payload as one contiguous
// (count, byte length, bytes) block.
func (w *Writer) block(n int, fill func(buf []byte) []byte) {
	w.Uvarint(uint64(n))
	if n == 0 {
		return
	}
	w.scratch = fill(w.scratch[:0])
	w.Uvarint(uint64(len(w.scratch)))
	w.raw(w.scratch)
}

// Ints writes a non-negative int slice as one fixed-width uint32 block
// (row numbers, counts, and lengths all fit; fixed-width decodes with a
// straight 4-byte loop). Negative or oversized values poison the
// writer — use DeltaInts/Varint for unbounded payloads.
func (w *Writer) Ints(xs []int) {
	w.Uvarint(uint64(len(xs)))
	if len(xs) == 0 {
		return
	}
	buf := w.scratch[:0]
	for _, x := range xs {
		if x < 0 || x > math.MaxUint32 {
			if w.err == nil {
				w.err = fmt.Errorf("snapshot: Ints value %d outside uint32 range", x)
			}
			return
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	w.scratch = buf
	w.raw(buf)
}

// DeltaInts writes an ascending int slice delta-encoded as one block
// (posting lists compress to ~1 byte per entry).
func (w *Writer) DeltaInts(xs []int) {
	w.block(len(xs), func(buf []byte) []byte {
		prev := 0
		for _, x := range xs {
			buf = binary.AppendVarint(buf, int64(x-prev))
			prev = x
		}
		return buf
	})
}

// Floats writes a float slice as one fixed-width block.
func (w *Writer) Floats(xs []float64) {
	w.Uvarint(uint64(len(xs)))
	if len(xs) == 0 {
		return
	}
	buf := w.scratch[:0]
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	w.scratch = buf
	w.raw(buf)
}

// Int64s writes an int64 slice as one fixed-width block (column
// payloads decode with a straight 8-byte loop, no varint branching).
func (w *Writer) Int64s(xs []int64) {
	w.Uvarint(uint64(len(xs)))
	if len(xs) == 0 {
		return
	}
	buf := w.scratch[:0]
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
	}
	w.scratch = buf
	w.raw(buf)
}

// Int32s writes an int32 slice as one fixed-width block (two's
// complement, so dictionary codes including the NoCode sentinel round
// trip).
func (w *Writer) Int32s(xs []int32) {
	w.Uvarint(uint64(len(xs)))
	if len(xs) == 0 {
		return
	}
	buf := w.scratch[:0]
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	w.scratch = buf
	w.raw(buf)
}

// Bools writes a length-prefixed bit-packed bool slice.
func (w *Writer) Bools(xs []bool) {
	w.Uvarint(uint64(len(xs)))
	var cur byte
	for i, x := range xs {
		if x {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			w.raw([]byte{cur})
			cur = 0
		}
	}
	if len(xs)%8 != 0 {
		w.raw([]byte{cur})
	}
}

// Reader decodes snapshot primitives with a sticky error.
type Reader struct {
	r       *bufio.Reader
	err     error
	scratch []byte
}

// take reads n bytes into the reusable scratch buffer; the returned
// slice is valid until the next take.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	buf := r.scratch[:n]
	r.read(buf)
	if r.err != nil {
		return nil
	}
	return buf
}

// block reads a (count, byte length, bytes) block and decodes count
// varints from it via dec.
func blockInts[T any](r *Reader, dec func(v int64, prev *T) T) []T {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	nb := r.Len()
	buf := r.take(nb)
	if r.err != nil {
		return nil
	}
	out := make([]T, n)
	var prev T
	for i := range out {
		v, k := binary.Varint(buf)
		if k <= 0 {
			r.Fail("truncated varint block")
			return nil
		}
		buf = buf[k:]
		out[i] = dec(v, &prev)
		prev = out[i]
	}
	if len(buf) != 0 {
		r.Fail("varint block has %d trailing bytes", len(buf))
		return nil
	}
	return out
}

// NewReader creates a buffered snapshot reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// Fail records an error (decoding validation hooks) and returns it.
func (r *Reader) Fail(format string, args ...any) error {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
	return r.err
}

// Header reads and verifies the magic and version.
func (r *Reader) Header() {
	var magic [4]byte
	r.read(magic[:])
	if r.err == nil && string(magic[:]) != Magic {
		r.err = fmt.Errorf("snapshot: bad magic %q (not a SQuID snapshot)", magic)
		return
	}
	v := r.Uvarint()
	if r.err == nil && v != Version {
		r.err = fmt.Errorf("%w: snapshot has version %d, this build reads %d (rebuild and re-save)",
			ErrVersion, v, Version)
	}
}

func (r *Reader) read(b []byte) {
	if r.err != nil {
		return
	}
	_, r.err = io.ReadFull(r.r, b)
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
		return 0
	}
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = err
		return 0
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	var b [1]byte
	r.read(b[:])
	return r.err == nil && b[0] != 0
}

// Float reads an IEEE-754 bit pattern.
func (r *Reader) Float() float64 {
	var b [8]byte
	r.read(b[:])
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Len reads a length prefix, validating it against maxLen.
func (r *Reader) Len() int {
	n := r.Uvarint()
	if r.err == nil && n > maxLen {
		r.err = fmt.Errorf("snapshot: implausible length %d (corrupt stream)", n)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	r.read(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// Ints reads a fixed-width uint32 block.
func (r *Reader) Ints() []int {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	buf := r.take(n * 4)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}

// DeltaInts reads a delta-encoded ascending int block.
func (r *Reader) DeltaInts() []int {
	return blockInts(r, func(v int64, prev *int) int { return *prev + int(v) })
}

// Floats reads a fixed-width float block.
func (r *Reader) Floats() []float64 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	buf := r.take(n * 8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out
}

// Int64s reads a fixed-width int64 block.
func (r *Reader) Int64s() []int64 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	buf := r.take(n * 8)
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out
}

// Int32s reads a fixed-width int32 block.
func (r *Reader) Int32s() []int32 {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	buf := r.take(n * 4)
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}

// Bools reads a length-prefixed bit-packed bool slice.
func (r *Reader) Bools() []bool {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	b := r.take((n + 7) / 8)
	if r.err != nil {
		return nil
	}
	for i := range out {
		out[i] = b[i/8]&(1<<(i%8)) != 0
	}
	return out
}
