package snapshot

import (
	"squid/internal/relation"
)

// WriteDatabase serializes a database: relations in insertion order
// (schema, dictionary-encoded column storage, NULL bitmaps) followed by
// the entity/property kind annotations.
func WriteDatabase(w *Writer, db *relation.Database) {
	w.String(db.Name)
	names := db.RelationNames()
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		writeRelation(w, db.Relation(name))
	}
	// Kind annotations, in relation order for determinism.
	for _, name := range names {
		w.Uvarint(uint64(db.Kind(name)))
	}
}

// ReadDatabase decodes a database written by WriteDatabase.
func ReadDatabase(r *Reader) *relation.Database {
	db := relation.NewDatabase(r.String())
	n := r.Len()
	names := make([]string, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		rel := readRelation(r)
		if r.Err() != nil {
			break
		}
		db.AddRelation(rel)
		names = append(names, rel.Name)
	}
	for _, name := range names {
		if r.Err() != nil {
			break
		}
		switch relation.EntityKind(r.Uvarint()) {
		case relation.KindEntity:
			db.MarkEntity(name)
		case relation.KindProperty:
			db.MarkProperty(name)
		}
	}
	return db
}

func writeRelation(w *Writer, rel *relation.Relation) {
	w.String(rel.Name)
	w.String(rel.PrimaryKey)
	w.Uvarint(uint64(len(rel.Foreign)))
	for _, fk := range rel.Foreign {
		w.String(fk.Column)
		w.String(fk.RefRelation)
		w.String(fk.RefColumn)
	}
	w.Int(rel.NumRows())
	cols := rel.Columns()
	w.Uvarint(uint64(len(cols)))
	for _, c := range cols {
		writeColumn(w, c)
	}
}

func readRelation(r *Reader) *relation.Relation {
	name := r.String()
	pk := r.String()
	nfk := r.Len()
	var fks []relation.ForeignKey
	for i := 0; i < nfk && r.Err() == nil; i++ {
		fks = append(fks, relation.ForeignKey{
			Column:      r.String(),
			RefRelation: r.String(),
			RefColumn:   r.String(),
		})
	}
	numRows := r.Int()
	ncols := r.Len()
	cols := make([]*relation.Column, 0, ncols)
	for i := 0; i < ncols && r.Err() == nil; i++ {
		c := readColumn(r, numRows)
		if r.Err() != nil {
			break
		}
		cols = append(cols, c)
	}
	if r.Err() != nil {
		return relation.New(name)
	}
	return relation.Restore(name, pk, fks, cols, numRows)
}

func writeColumn(w *Writer, c *relation.Column) {
	w.String(c.Name)
	w.Uvarint(uint64(c.Type))
	w.Bools(c.RawNulls())
	switch c.Type {
	case relation.Int:
		w.Int64s(c.RawInts())
	case relation.Float:
		w.Floats(c.RawFloats())
	default:
		d := c.Dict()
		vals := d.Values()
		w.Uvarint(uint64(len(vals)))
		for _, v := range vals {
			w.String(v)
		}
		w.Int32s(c.RawCodes())
	}
}

func readColumn(r *Reader, numRows int) *relation.Column {
	name := r.String()
	typ := relation.ColType(r.Uvarint())
	nulls := r.Bools()
	if nulls != nil && len(nulls) != numRows {
		r.Fail("column %q: null bitmap has %d bits, want %d", name, len(nulls), numRows)
		return nil
	}
	check := func(n int) bool {
		if n != numRows {
			r.Fail("column %q: %d cells, want %d", name, n, numRows)
			return false
		}
		return true
	}
	switch typ {
	case relation.Int:
		ints := r.Int64s()
		if r.Err() != nil || !check(len(ints)) {
			return nil
		}
		return relation.RestoreIntColumn(name, ints, nulls)
	case relation.Float:
		flts := r.Floats()
		if r.Err() != nil || !check(len(flts)) {
			return nil
		}
		return relation.RestoreFloatColumn(name, flts, nulls)
	case relation.String:
		nvals := r.Len()
		vals := make([]string, 0, nvals)
		for i := 0; i < nvals && r.Err() == nil; i++ {
			vals = append(vals, r.String())
		}
		codes := r.Int32s()
		if r.Err() != nil || !check(len(codes)) {
			return nil
		}
		for _, code := range codes {
			if code != relation.NoCode && (code < 0 || int(code) >= nvals) {
				r.Fail("column %q: code %d outside dictionary of %d values", name, code, nvals)
				return nil
			}
		}
		return relation.RestoreStringColumn(name, codes, relation.RestoreDict(vals), nulls)
	default:
		r.Fail("column %q: unknown type %d", name, typ)
		return nil
	}
}
