package snapshot

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"squid/internal/relation"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header()
	w.Varint(-12345)
	w.Uvarint(67890)
	w.Float(math.Pi)
	w.Bool(true)
	w.String("héllo\x00world")
	w.Ints([]int{3, 1 << 30, 0})
	w.DeltaInts([]int{2, 5, 5, 900})
	w.Floats([]float64{0, -1.5, math.Inf(1)})
	w.Int64s([]int64{math.MinInt64, math.MaxInt64})
	w.Int32s([]int32{-1, 0, 7})
	w.Bools([]bool{true, false, true, true, false, true, false, false, true})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Header()
	if got := r.Varint(); got != -12345 {
		t.Errorf("Varint=%d", got)
	}
	if got := r.Uvarint(); got != 67890 {
		t.Errorf("Uvarint=%d", got)
	}
	if got := r.Float(); got != math.Pi {
		t.Errorf("Float=%v", got)
	}
	if !r.Bool() {
		t.Error("Bool=false")
	}
	if got := r.String(); got != "héllo\x00world" {
		t.Errorf("String=%q", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, []int{3, 1 << 30, 0}) {
		t.Errorf("Ints=%v", got)
	}
	if got := r.DeltaInts(); !reflect.DeepEqual(got, []int{2, 5, 5, 900}) {
		t.Errorf("DeltaInts=%v", got)
	}
	if got := r.Floats(); !reflect.DeepEqual(got, []float64{0, -1.5, math.Inf(1)}) {
		t.Errorf("Floats=%v", got)
	}
	if got := r.Int64s(); !reflect.DeepEqual(got, []int64{math.MinInt64, math.MaxInt64}) {
		t.Errorf("Int64s=%v", got)
	}
	if got := r.Int32s(); !reflect.DeepEqual(got, []int32{-1, 0, 7}) {
		t.Errorf("Int32s=%v", got)
	}
	if got := r.Bools(); !reflect.DeepEqual(got, []bool{true, false, true, true, false, true, false, false, true}) {
		t.Errorf("Bools=%v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestIntsRejectsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Ints([]int{-1})
	if w.Err() == nil {
		t.Error("negative Ints value accepted")
	}
}

func TestVersionPolicy(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.raw([]byte(Magic))
	w.Uvarint(Version + 1)
	_ = w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Header()
	if !errors.Is(r.Err(), ErrVersion) {
		t.Errorf("future version accepted: %v", r.Err())
	}

	r = NewReader(bytes.NewReader([]byte("XXXXgarbage")))
	r.Header()
	if r.Err() == nil {
		t.Error("bad magic accepted")
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	db := relation.NewDatabase("rt")
	people := relation.New("people",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("score", relation.Float),
	).SetPrimaryKey("id")
	people.MustAppend(relation.IntVal(1), relation.StringVal("a"), relation.FloatVal(0.5))
	people.MustAppend(relation.IntVal(2), relation.Null, relation.Null)
	people.MustAppend(relation.IntVal(3), relation.StringVal("a"), relation.FloatVal(-2))
	db.AddRelation(people)
	db.MarkEntity("people")
	tags := relation.New("tags",
		relation.Col("pid", relation.Int),
		relation.Col("tag", relation.String),
	).AddForeignKey("pid", "people", "id")
	tags.MustAppend(relation.IntVal(1), relation.StringVal("x"))
	db.AddRelation(tags)
	db.MarkProperty("tags")

	var buf bytes.Buffer
	w := NewWriter(&buf)
	WriteDatabase(w, db)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	got := ReadDatabase(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || !reflect.DeepEqual(got.RelationNames(), db.RelationNames()) {
		t.Fatalf("database shape diverged: %v", got.RelationNames())
	}
	if got.Kind("people") != relation.KindEntity || got.Kind("tags") != relation.KindProperty {
		t.Error("kinds lost")
	}
	gp := got.Relation("people")
	if gp.PrimaryKey != "id" || gp.NumRows() != 3 {
		t.Fatalf("people shape: pk=%q rows=%d", gp.PrimaryKey, gp.NumRows())
	}
	for row := 0; row < 3; row++ {
		for _, col := range []string{"id", "name", "score"} {
			if want, g := people.Get(row, col), gp.Get(row, col); !want.Equal(g) {
				t.Errorf("cell (%d,%s): %v != %v", row, col, g, want)
			}
		}
	}
	if gt := got.Relation("tags"); len(gt.Foreign) != 1 || gt.Foreign[0].RefRelation != "people" {
		t.Error("foreign keys lost")
	}
	// Dictionary restored with identical codes.
	if gp.Column("name").Code(0) != gp.Column("name").Code(2) {
		t.Error("dictionary codes diverged for equal values")
	}
	// Restored relations accept appends (dict keeps interning).
	gp.MustAppend(relation.IntVal(4), relation.StringVal("b"), relation.FloatVal(1))
	if gp.NumRows() != 4 || gp.Get(3, "name").Str() != "b" {
		t.Error("append to restored relation failed")
	}
}
