package relation

import "fmt"

// Column is a typed column of a relation, stored densely with a NULL
// bitmap. Integer and float columns store raw 64-bit values; TEXT columns
// are dictionary-encoded: cells hold int32 codes into a per-column Dict,
// so the dense storage is four bytes per row regardless of string length
// and scans compare codes instead of strings.
type Column struct {
	Name string
	Type ColType

	ints  []int64
	flts  []float64
	codes []int32
	dict  *Dict
	nulls []bool // nil when the column has no NULLs so far
}

// NewColumn creates an empty column.
func NewColumn(name string, t ColType) *Column {
	c := &Column{Name: name, Type: t}
	if t == String {
		c.dict = newDict()
	}
	return c
}

// Len returns the number of stored cells.
func (c *Column) Len() int {
	switch c.Type {
	case Int:
		return len(c.ints)
	case Float:
		return len(c.flts)
	default:
		return len(c.codes)
	}
}

// Append adds a value to the end of the column. A NULL value is stored as
// the zero of the column type (the NoCode sentinel for TEXT) with the
// null bitmap set.
func (c *Column) Append(v Value) error {
	if v.IsNull() {
		c.ensureNulls()
		c.nulls = append(c.nulls, true)
		switch c.Type {
		case Int:
			c.ints = append(c.ints, 0)
		case Float:
			c.flts = append(c.flts, 0)
		default:
			c.codes = append(c.codes, NoCode)
		}
		return nil
	}
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
	switch c.Type {
	case Int:
		if v.kind != kindInt {
			return fmt.Errorf("relation: column %q is INTEGER, got %s", c.Name, v.kindName())
		}
		c.ints = append(c.ints, v.i)
	case Float:
		switch v.kind {
		case kindFloat:
			c.flts = append(c.flts, v.f)
		case kindInt:
			c.flts = append(c.flts, float64(v.i))
		default:
			return fmt.Errorf("relation: column %q is DOUBLE, got %s", c.Name, v.kindName())
		}
	case String:
		if v.kind != kindString {
			return fmt.Errorf("relation: column %q is TEXT, got %s", c.Name, v.kindName())
		}
		c.codes = append(c.codes, c.dict.Intern(v.s))
	}
	return nil
}

// checkStorable reports whether v could be stored in this column,
// using exactly Append's type rules and error messages; it mutates
// nothing, so whole-row validation can run before any cell is written.
func (c *Column) checkStorable(v Value) error {
	if v.IsNull() {
		return nil
	}
	switch c.Type {
	case Int:
		if v.kind != kindInt {
			return fmt.Errorf("relation: column %q is INTEGER, got %s", c.Name, v.kindName())
		}
	case Float:
		if v.kind != kindFloat && v.kind != kindInt {
			return fmt.Errorf("relation: column %q is DOUBLE, got %s", c.Name, v.kindName())
		}
	case String:
		if v.kind != kindString {
			return fmt.Errorf("relation: column %q is TEXT, got %s", c.Name, v.kindName())
		}
	}
	return nil
}

// ensureNulls materializes the null bitmap lazily, backfilling false.
func (c *Column) ensureNulls() {
	if c.nulls == nil {
		c.nulls = make([]bool, c.Len())
	}
}

// IsNull reports whether cell row is NULL.
func (c *Column) IsNull(row int) bool {
	return c.nulls != nil && c.nulls[row]
}

// Get returns the cell at row as a Value.
func (c *Column) Get(row int) Value {
	if c.IsNull(row) {
		return Null
	}
	switch c.Type {
	case Int:
		return IntVal(c.ints[row])
	case Float:
		return FloatVal(c.flts[row])
	default:
		return StringVal(c.dict.Value(c.codes[row]))
	}
}

// Int64 returns the raw integer at row without Value boxing. The caller
// must know the column type and that the cell is non-NULL.
func (c *Column) Int64(row int) int64 { return c.ints[row] }

// Float64 returns the raw float at row.
func (c *Column) Float64(row int) float64 {
	if c.Type == Int {
		return float64(c.ints[row])
	}
	return c.flts[row]
}

// Str returns the raw string at row. The caller must know the column is
// TEXT and the cell is non-NULL.
func (c *Column) Str(row int) string { return c.dict.Value(c.codes[row]) }

// Code returns the dictionary code at row (NoCode for NULL cells); the
// fast path for scans that compare codes instead of strings.
func (c *Column) Code(row int) int32 { return c.codes[row] }

// Dict returns the column's dictionary (nil for non-TEXT columns).
func (c *Column) Dict() *Dict { return c.dict }

// DistinctCount returns the number of distinct non-NULL values ever
// stored in the column — exact for append-only columns (the dictionary
// grows monotonically), an upper bound if cells were overwritten.
func (c *Column) DistinctCount() int {
	if c.Type == String {
		return c.dict.Len()
	}
	seen := make(map[Value]struct{})
	for i := 0; i < c.Len(); i++ {
		if !c.IsNull(i) {
			seen[c.Get(i)] = struct{}{}
		}
	}
	return len(seen)
}

// Set overwrites the cell at row.
func (c *Column) Set(row int, v Value) error {
	if v.IsNull() {
		c.ensureNulls()
		c.nulls[row] = true
		if c.Type == String {
			c.codes[row] = NoCode
		}
		return nil
	}
	if c.nulls != nil {
		c.nulls[row] = false
	}
	switch c.Type {
	case Int:
		if v.kind != kindInt {
			return fmt.Errorf("relation: column %q is INTEGER, got %s", c.Name, v.kindName())
		}
		c.ints[row] = v.i
	case Float:
		c.flts[row] = v.Float()
	case String:
		if v.kind != kindString {
			return fmt.Errorf("relation: column %q is TEXT, got %s", c.Name, v.kindName())
		}
		c.codes[row] = c.dict.Intern(v.s)
	}
	return nil
}

// ByteSize estimates the in-memory footprint of the column in bytes; used
// for the Fig 18 dataset-statistics table.
func (c *Column) ByteSize() int64 {
	var n int64
	switch c.Type {
	case Int:
		n = int64(len(c.ints)) * 8
	case Float:
		n = int64(len(c.flts)) * 8
	default:
		n = int64(len(c.codes))*4 + c.dict.ByteSize()
	}
	if c.nulls != nil {
		n += int64(len(c.nulls))
	}
	return n
}

// CloneForAppend returns a copy-on-write clone for append-only epoch
// maintenance: the clone shares the cell storage and the dictionary with
// the receiver, so it is O(1). Appends on the clone write only at
// indices ≥ the receiver's length (into shared spare capacity or a
// reallocated array), so readers of the original — which never index
// past their own length — are unaffected. Only the single in-flight
// writer of the owning relation may append; epochs form a linear chain,
// so each storage index is written at most once.
func (c *Column) CloneForAppend() *Column {
	q := *c
	return &q
}

// CloneForUpdate is CloneForAppend plus a deep copy of the cell storage
// and null bitmap, for columns a copy-on-write writer mutates in place
// (the derived relations' count column). Readers of the original never
// observe the updates.
func (c *Column) CloneForUpdate() *Column {
	q := *c
	q.ints = append([]int64(nil), c.ints...)
	q.flts = append([]float64(nil), c.flts...)
	q.codes = append([]int32(nil), c.codes...)
	if c.nulls != nil {
		q.nulls = append([]bool(nil), c.nulls...)
	}
	return &q
}

// Raw accessors for snapshot serialization. The returned slices alias
// column storage: do not mutate.

// RawInts returns the dense integer cells (Int columns).
func (c *Column) RawInts() []int64 { return c.ints }

// RawFloats returns the dense float cells (Float columns).
func (c *Column) RawFloats() []float64 { return c.flts }

// RawCodes returns the dense dictionary codes (String columns).
func (c *Column) RawCodes() []int32 { return c.codes }

// RawNulls returns the null bitmap (nil when the column has no NULLs).
func (c *Column) RawNulls() []bool { return c.nulls }

// RestoreIntColumn rebuilds an Int column from raw storage (snapshot
// load). The slices are adopted, not copied.
func RestoreIntColumn(name string, ints []int64, nulls []bool) *Column {
	return &Column{Name: name, Type: Int, ints: ints, nulls: nulls}
}

// RestoreFloatColumn rebuilds a Float column from raw storage.
func RestoreFloatColumn(name string, flts []float64, nulls []bool) *Column {
	return &Column{Name: name, Type: Float, flts: flts, nulls: nulls}
}

// RestoreStringColumn rebuilds a dictionary-encoded String column from
// raw storage.
func RestoreStringColumn(name string, codes []int32, dict *Dict, nulls []bool) *Column {
	return &Column{Name: name, Type: String, codes: codes, dict: dict, nulls: nulls}
}
