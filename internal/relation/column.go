package relation

import "fmt"

// Column is a typed column of a relation, stored densely with a NULL
// bitmap. Exactly one of the ints/floats/strs slices is in use, chosen by
// Type.
type Column struct {
	Name string
	Type ColType

	ints  []int64
	flts  []float64
	strs  []string
	nulls []bool // nil when the column has no NULLs so far
}

// NewColumn creates an empty column.
func NewColumn(name string, t ColType) *Column {
	return &Column{Name: name, Type: t}
}

// Len returns the number of stored cells.
func (c *Column) Len() int {
	switch c.Type {
	case Int:
		return len(c.ints)
	case Float:
		return len(c.flts)
	default:
		return len(c.strs)
	}
}

// Append adds a value to the end of the column. A NULL value is stored as
// the zero of the column type with the null bitmap set.
func (c *Column) Append(v Value) error {
	if v.IsNull() {
		c.ensureNulls()
		c.nulls = append(c.nulls, true)
		switch c.Type {
		case Int:
			c.ints = append(c.ints, 0)
		case Float:
			c.flts = append(c.flts, 0)
		default:
			c.strs = append(c.strs, "")
		}
		return nil
	}
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
	switch c.Type {
	case Int:
		if v.kind != kindInt {
			return fmt.Errorf("relation: column %q is INTEGER, got %s", c.Name, v.kindName())
		}
		c.ints = append(c.ints, v.i)
	case Float:
		switch v.kind {
		case kindFloat:
			c.flts = append(c.flts, v.f)
		case kindInt:
			c.flts = append(c.flts, float64(v.i))
		default:
			return fmt.Errorf("relation: column %q is DOUBLE, got %s", c.Name, v.kindName())
		}
	case String:
		if v.kind != kindString {
			return fmt.Errorf("relation: column %q is TEXT, got %s", c.Name, v.kindName())
		}
		c.strs = append(c.strs, v.s)
	}
	return nil
}

// ensureNulls materializes the null bitmap lazily, backfilling false.
func (c *Column) ensureNulls() {
	if c.nulls == nil {
		c.nulls = make([]bool, c.Len())
	}
}

// IsNull reports whether cell row is NULL.
func (c *Column) IsNull(row int) bool {
	return c.nulls != nil && c.nulls[row]
}

// Get returns the cell at row as a Value.
func (c *Column) Get(row int) Value {
	if c.IsNull(row) {
		return Null
	}
	switch c.Type {
	case Int:
		return IntVal(c.ints[row])
	case Float:
		return FloatVal(c.flts[row])
	default:
		return StringVal(c.strs[row])
	}
}

// Int64 returns the raw integer at row without Value boxing. The caller
// must know the column type and that the cell is non-NULL.
func (c *Column) Int64(row int) int64 { return c.ints[row] }

// Float64 returns the raw float at row.
func (c *Column) Float64(row int) float64 {
	if c.Type == Int {
		return float64(c.ints[row])
	}
	return c.flts[row]
}

// Str returns the raw string at row.
func (c *Column) Str(row int) string { return c.strs[row] }

// Set overwrites the cell at row.
func (c *Column) Set(row int, v Value) error {
	if v.IsNull() {
		c.ensureNulls()
		c.nulls[row] = true
		return nil
	}
	if c.nulls != nil {
		c.nulls[row] = false
	}
	switch c.Type {
	case Int:
		if v.kind != kindInt {
			return fmt.Errorf("relation: column %q is INTEGER, got %s", c.Name, v.kindName())
		}
		c.ints[row] = v.i
	case Float:
		c.flts[row] = v.Float()
	case String:
		if v.kind != kindString {
			return fmt.Errorf("relation: column %q is TEXT, got %s", c.Name, v.kindName())
		}
		c.strs[row] = v.s
	}
	return nil
}

// ByteSize estimates the in-memory footprint of the column in bytes; used
// for the Fig 18 dataset-statistics table.
func (c *Column) ByteSize() int64 {
	var n int64
	switch c.Type {
	case Int:
		n = int64(len(c.ints)) * 8
	case Float:
		n = int64(len(c.flts)) * 8
	default:
		n = int64(len(c.strs)) * 16
		for _, s := range c.strs {
			n += int64(len(s))
		}
	}
	if c.nulls != nil {
		n += int64(len(c.nulls))
	}
	return n
}
