package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	data := "id,name,age,score\n1,Ada,36,9.5\n2,Bob,,8\n3,NULL,41,null\n"
	rel, err := LoadCSV("people", strings.NewReader(data), []CSVColumn{
		{"id", Int}, {"name", String}, {"age", Int}, {"score", Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 3 || rel.NumCols() != 4 {
		t.Fatalf("dims %dx%d", rel.NumRows(), rel.NumCols())
	}
	if rel.Get(0, "name").Str() != "Ada" || rel.Get(0, "age").Int() != 36 {
		t.Error("row 0 wrong")
	}
	if !rel.Get(1, "age").IsNull() {
		t.Error("empty field must load as NULL")
	}
	if !rel.Get(2, "name").IsNull() || !rel.Get(2, "score").IsNull() {
		t.Error("NULL literal must load as NULL (case-insensitive)")
	}
	if rel.Get(1, "score").Float() != 8 {
		t.Error("int literal into float column")
	}
}

func TestLoadCSVColumnSubsetAndOrder(t *testing.T) {
	// Header order differs from spec order; extra column ignored.
	data := "extra,AGE,id\nx,50,7\ny,60,8\n"
	rel, err := LoadCSV("t", strings.NewReader(data), []CSVColumn{
		{"id", Int}, {"age", Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Get(0, "id").Int() != 7 || rel.Get(0, "age").Int() != 50 {
		t.Errorf("row 0: %v", rel.Row(0))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		cols []CSVColumn
	}{
		{"missing column", "id\n1\n", []CSVColumn{{"id", Int}, {"name", String}}},
		{"bad int", "id\nabc\n", []CSVColumn{{"id", Int}}},
		{"bad float", "x\n1.2.3\n", []CSVColumn{{"x", Float}}},
		{"no columns", "id\n1\n", nil},
		{"empty input", "", []CSVColumn{{"id", Int}}},
	}
	for _, c := range cases {
		if _, err := LoadCSV("t", strings.NewReader(c.data), c.cols); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New("people",
		Col("id", Int),
		Col("name", String),
		Col("score", Float),
	)
	r.MustAppend(IntVal(1), StringVal("Ada Lovelace"), FloatVal(9.75))
	r.MustAppend(IntVal(2), Null, FloatVal(3))
	r.MustAppend(IntVal(3), StringVal("comma, inside"), Null)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("people", &buf, []CSVColumn{
		{"id", Int}, {"name", String}, {"score", Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != r.NumRows() {
		t.Fatalf("rows %d vs %d", back.NumRows(), r.NumRows())
	}
	for row := 0; row < r.NumRows(); row++ {
		for _, col := range r.ColumnNames() {
			a, b := r.Get(row, col), back.Get(row, col)
			if !a.Equal(b) {
				t.Errorf("cell (%d,%s): %v vs %v", row, col, a, b)
			}
		}
	}
}
