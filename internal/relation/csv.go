package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVColumn declares one column of a CSV import: its name and type.
type CSVColumn struct {
	Name string
	Type ColType
}

// LoadCSV reads CSV data into a new relation. The first record must be
// a header naming every column of cols (in any order; extra CSV columns
// are ignored). Empty fields and the literal NULL (case-insensitive)
// load as NULL. Numeric parse failures abort with row context.
func LoadCSV(name string, r io.Reader, cols []CSVColumn) (*Relation, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: LoadCSV %q needs at least one column", name)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: LoadCSV %q: reading header: %w", name, err)
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = -1
		for j, h := range header {
			if strings.EqualFold(strings.TrimSpace(h), c.Name) {
				colIdx[i] = j
				break
			}
		}
		if colIdx[i] < 0 {
			return nil, fmt.Errorf("relation: LoadCSV %q: header lacks column %q", name, c.Name)
		}
	}

	specs := make([]*Column, len(cols))
	for i, c := range cols {
		specs[i] = Col(c.Name, c.Type)
	}
	rel := New(name, specs...)

	vals := make([]Value, len(cols))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: LoadCSV %q line %d: %w", name, line, err)
		}
		for i, c := range cols {
			j := colIdx[i]
			if j >= len(rec) {
				return nil, fmt.Errorf("relation: LoadCSV %q line %d: record too short", name, line)
			}
			v, err := parseCSVValue(rec[j], c.Type)
			if err != nil {
				return nil, fmt.Errorf("relation: LoadCSV %q line %d column %q: %w", name, line, c.Name, err)
			}
			vals[i] = v
		}
		if err := rel.Append(vals...); err != nil {
			return nil, fmt.Errorf("relation: LoadCSV %q line %d: %w", name, line, err)
		}
	}
	return rel, nil
}

func parseCSVValue(field string, t ColType) (Value, error) {
	field = strings.TrimSpace(field)
	if field == "" || strings.EqualFold(field, "null") {
		return Null, nil
	}
	switch t {
	case Int:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("parsing %q as integer: %w", field, err)
		}
		return IntVal(n), nil
	case Float:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Null, fmt.Errorf("parsing %q as float: %w", field, err)
		}
		return FloatVal(f), nil
	default:
		return StringVal(field), nil
	}
}

// WriteCSV writes the relation as CSV with a header row; NULLs render
// as empty fields. It round-trips with LoadCSV for the same schema.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, r.NumCols())
	for row := 0; row < r.NumRows(); row++ {
		for i, c := range r.Columns() {
			if c.IsNull(row) {
				rec[i] = ""
				continue
			}
			rec[i] = c.Get(row).String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
