package relation

import (
	"fmt"
	"sort"
)

// EntityKind classifies relations for αDB construction, following the
// paper's metadata model (§5): the administrator marks which tables hold
// entities (person, movie) and which hold direct properties (genre);
// fact tables that associate them are discovered automatically from
// key-foreign-key edges.
type EntityKind int

const (
	// KindUnknown means the relation has no declared role; the αDB
	// builder will classify it as a fact table if its foreign keys
	// connect entities and properties.
	KindUnknown EntityKind = iota
	// KindEntity marks an entity relation (person, movie, author, ...).
	KindEntity
	// KindProperty marks a direct-property (dimension) relation
	// (genre, country, venue, ...).
	KindProperty
)

// Database is a named collection of relations plus the administrator
// metadata SQuID's offline module consumes.
type Database struct {
	Name      string
	relations map[string]*Relation
	order     []string // insertion order for deterministic iteration
	kinds     map[string]EntityKind
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{
		Name:      name,
		relations: make(map[string]*Relation),
		kinds:     make(map[string]EntityKind),
	}
}

// AddRelation registers a relation; it panics on duplicate names.
func (d *Database) AddRelation(r *Relation) *Relation {
	if _, dup := d.relations[r.Name]; dup {
		panic(fmt.Sprintf("database %q: duplicate relation %q", d.Name, r.Name))
	}
	d.relations[r.Name] = r
	d.order = append(d.order, r.Name)
	return r
}

// Relation returns the named relation or nil.
func (d *Database) Relation(name string) *Relation { return d.relations[name] }

// MustRelation returns the named relation or panics.
func (d *Database) MustRelation(name string) *Relation {
	r := d.relations[name]
	if r == nil {
		panic(fmt.Sprintf("database %q: no relation %q", d.Name, name))
	}
	return r
}

// RelationNames returns relation names in insertion order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// NumRelations returns the number of relations.
func (d *Database) NumRelations() int { return len(d.order) }

// MarkEntity flags a relation as an entity relation.
func (d *Database) MarkEntity(name string) {
	d.mustHave(name)
	d.kinds[name] = KindEntity
}

// MarkProperty flags a relation as a direct-property relation.
func (d *Database) MarkProperty(name string) {
	d.mustHave(name)
	d.kinds[name] = KindProperty
}

func (d *Database) mustHave(name string) {
	if _, ok := d.relations[name]; !ok {
		panic(fmt.Sprintf("database %q: no relation %q", d.Name, name))
	}
}

// Kind returns the declared role of a relation.
func (d *Database) Kind(name string) EntityKind { return d.kinds[name] }

// EntityRelations returns the names of entity relations, sorted.
func (d *Database) EntityRelations() []string { return d.byKind(KindEntity) }

// PropertyRelations returns the names of property relations, sorted.
func (d *Database) PropertyRelations() []string { return d.byKind(KindProperty) }

func (d *Database) byKind(k EntityKind) []string {
	var out []string
	for name, kind := range d.kinds {
		if kind == k {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// CloneWith returns a shallow clone of the database whose relation map
// replaces the given entries: the copy-on-write epoch publish step uses
// it to swap in a writer's privatized relations while structurally
// sharing every untouched one. Relation order, kind metadata, and the
// name are shared — epochs never add or remove relations.
func (d *Database) CloneWith(replace map[string]*Relation) *Database {
	q := &Database{
		Name:      d.Name,
		relations: make(map[string]*Relation, len(d.relations)),
		order:     d.order,
		kinds:     d.kinds,
	}
	for name, r := range d.relations {
		q.relations[name] = r
	}
	for name, r := range replace {
		if _, known := q.relations[name]; known {
			q.relations[name] = r
		}
	}
	return q
}

// ByteSize estimates the total footprint of all relations (Fig 18).
func (d *Database) ByteSize() int64 {
	var n int64
	for _, name := range d.order {
		n += d.relations[name].ByteSize()
	}
	return n
}

// TotalRows returns the sum of all relation cardinalities.
func (d *Database) TotalRows() int {
	n := 0
	for _, name := range d.order {
		n += d.relations[name].NumRows()
	}
	return n
}

// Validate checks referential metadata: primary keys exist and are unique,
// and every foreign key references an existing relation/column. Generators
// call this after building synthetic data.
func (d *Database) Validate() error {
	for _, name := range d.order {
		r := d.relations[name]
		if r.PrimaryKey != "" {
			col := r.Column(r.PrimaryKey)
			if col == nil {
				return fmt.Errorf("relation %q: primary key column %q missing", name, r.PrimaryKey)
			}
			seen := make(map[Value]struct{}, col.Len())
			for i := 0; i < col.Len(); i++ {
				v := col.Get(i)
				if v.IsNull() {
					return fmt.Errorf("relation %q: NULL primary key at row %d", name, i)
				}
				if _, dup := seen[v]; dup {
					return fmt.Errorf("relation %q: duplicate primary key %v", name, v)
				}
				seen[v] = struct{}{}
			}
		}
		for _, fk := range r.Foreign {
			ref := d.relations[fk.RefRelation]
			if ref == nil {
				return fmt.Errorf("relation %q: foreign key %q references missing relation %q", name, fk.Column, fk.RefRelation)
			}
			if ref.Column(fk.RefColumn) == nil {
				return fmt.Errorf("relation %q: foreign key %q references missing column %s.%s", name, fk.Column, fk.RefRelation, fk.RefColumn)
			}
			if r.Column(fk.Column) == nil {
				return fmt.Errorf("relation %q: foreign key column %q missing", name, fk.Column)
			}
		}
	}
	return nil
}
