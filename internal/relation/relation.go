package relation

import (
	"fmt"
	"sort"
)

// ForeignKey declares that Column of the owning relation references
// RefColumn of RefRelation (always a key-foreign-key edge in SQuID's
// schema graph).
type ForeignKey struct {
	Column      string
	RefRelation string
	RefColumn   string
}

// Relation is an in-memory table: named, typed columns of equal length,
// with optional primary-key and foreign-key metadata.
type Relation struct {
	Name       string
	PrimaryKey string // name of the PK column ("" if none)
	Foreign    []ForeignKey

	cols    []*Column
	colIdx  map[string]int
	numRows int
}

// New creates an empty relation with the given columns.
// Column specs are (name, type) pairs supplied via Col.
func New(name string, cols ...*Column) *Relation {
	r := &Relation{Name: name, colIdx: make(map[string]int, len(cols))}
	for _, c := range cols {
		r.addColumn(c)
	}
	return r
}

// Col is a convenience constructor for column specs used with New.
func Col(name string, t ColType) *Column { return NewColumn(name, t) }

func (r *Relation) addColumn(c *Column) {
	if _, dup := r.colIdx[c.Name]; dup {
		panic(fmt.Sprintf("relation %q: duplicate column %q", r.Name, c.Name))
	}
	r.colIdx[c.Name] = len(r.cols)
	r.cols = append(r.cols, c)
}

// SetPrimaryKey declares column name as the primary key.
func (r *Relation) SetPrimaryKey(name string) *Relation {
	if _, ok := r.colIdx[name]; !ok {
		panic(fmt.Sprintf("relation %q: no column %q for primary key", r.Name, name))
	}
	r.PrimaryKey = name
	return r
}

// AddForeignKey declares column col as referencing refRel.refCol.
func (r *Relation) AddForeignKey(col, refRel, refCol string) *Relation {
	if _, ok := r.colIdx[col]; !ok {
		panic(fmt.Sprintf("relation %q: no column %q for foreign key", r.Name, col))
	}
	r.Foreign = append(r.Foreign, ForeignKey{Column: col, RefRelation: refRel, RefColumn: refCol})
	return r
}

// Restore rebuilds a relation from restored columns (snapshot load);
// every column must already hold numRows cells.
func Restore(name, primaryKey string, fks []ForeignKey, cols []*Column, numRows int) *Relation {
	r := New(name, cols...)
	r.PrimaryKey = primaryKey
	r.Foreign = fks
	r.numRows = numRows
	return r
}

// CloneForWrite returns a copy-on-write clone of the relation for one
// epoch's writer: column headers are copied (appends on the clone never
// disturb readers of the original — see Column.CloneForAppend), the
// column-name index and key metadata are shared, and the columns named
// in updateCols get a deep storage copy because the writer will mutate
// their existing cells in place (Set), not just append.
func (r *Relation) CloneForWrite(updateCols ...string) *Relation {
	deep := make(map[string]bool, len(updateCols))
	for _, c := range updateCols {
		deep[c] = true
	}
	q := *r
	q.cols = make([]*Column, len(r.cols))
	for i, c := range r.cols {
		if deep[c.Name] {
			q.cols[i] = c.CloneForUpdate()
		} else {
			q.cols[i] = c.CloneForAppend()
		}
	}
	return &q
}

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return r.numRows }

// NumCols returns the number of columns.
func (r *Relation) NumCols() int { return len(r.cols) }

// Columns returns the column list in declaration order.
func (r *Relation) Columns() []*Column { return r.cols }

// ColumnNames returns the column names in declaration order.
func (r *Relation) ColumnNames() []string {
	names := make([]string, len(r.cols))
	for i, c := range r.cols {
		names[i] = c.Name
	}
	return names
}

// Column returns the column with the given name, or nil.
func (r *Relation) Column(name string) *Column {
	if i, ok := r.colIdx[name]; ok {
		return r.cols[i]
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	if i, ok := r.colIdx[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the relation has a column with the given name.
func (r *Relation) HasColumn(name string) bool {
	_, ok := r.colIdx[name]
	return ok
}

// ValidateRow checks that vals could be appended as one row: the arity
// matches and every value is storable in its column. Writers that must
// not mutate on failure (the αDB's copy-on-write insert paths) call it
// before touching any state.
func (r *Relation) ValidateRow(vals []Value) error {
	if len(vals) != len(r.cols) {
		return fmt.Errorf("relation %q: Append got %d values, want %d", r.Name, len(vals), len(r.cols))
	}
	for i, v := range vals {
		if err := r.cols[i].checkStorable(v); err != nil {
			return err
		}
	}
	return nil
}

// Append adds a row. The row is validated up front (ValidateRow), so a
// rejected row never leaves ragged columns behind: either every column
// gains a cell or none does.
func (r *Relation) Append(vals ...Value) error {
	if err := r.ValidateRow(vals); err != nil {
		return err
	}
	for i, v := range vals {
		if err := r.cols[i].Append(v); err != nil {
			return err
		}
	}
	r.numRows++
	return nil
}

// MustAppend is Append that panics on error; used by generators and tests
// where the schema is statically known.
func (r *Relation) MustAppend(vals ...Value) {
	if err := r.Append(vals...); err != nil {
		panic(err)
	}
}

// Get returns cell (row, col name) as a Value.
func (r *Relation) Get(row int, col string) Value {
	c := r.Column(col)
	if c == nil {
		panic(fmt.Sprintf("relation %q: no column %q", r.Name, col))
	}
	return c.Get(row)
}

// Row materializes row i as a Value slice in column order.
func (r *Relation) Row(i int) []Value {
	out := make([]Value, len(r.cols))
	for j, c := range r.cols {
		out[j] = c.Get(i)
	}
	return out
}

// ByteSize estimates the in-memory footprint in bytes (Fig 18 statistics).
func (r *Relation) ByteSize() int64 {
	var n int64
	for _, c := range r.cols {
		n += c.ByteSize()
	}
	return n
}

// DistinctValues returns the sorted distinct non-NULL values of a column.
func (r *Relation) DistinctValues(col string) []Value {
	c := r.Column(col)
	if c == nil {
		return nil
	}
	seen := make(map[Value]struct{})
	for i := 0; i < c.Len(); i++ {
		if c.IsNull(i) {
			continue
		}
		seen[c.Get(i)] = struct{}{}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
