package relation

import "sync"

// Dict is a per-column string dictionary: every distinct value of a TEXT
// column is interned once and referenced by a dense int32 code. Columns
// store codes instead of Go strings, which cuts the per-row footprint to
// four bytes, makes equality comparisons integer compares, and lets index
// builders normalize each distinct value exactly once instead of once per
// row.
//
// Codes are assigned in first-appearance order and are never reused, so a
// snapshot that serializes the dictionary in code order restores the exact
// same encoding.
//
// Concurrency: a Dict is append-only and internally synchronized, and it
// is deliberately shared across copy-on-write epochs instead of cloned.
// Codes are stable forever — an epoch that was published when the
// dictionary held n values only ever stores codes < n in its columns and
// statistics, so readers of a retired epoch decode exactly the values
// they saw at publish time even while a writer interns new ones. Interning
// itself is serialized by the owning relation's writer lock; the internal
// lock only protects readers from the map/slice growth.
type Dict struct {
	mu   sync.RWMutex
	vals []string
	ids  map[string]int32
}

// NoCode is the sentinel code stored for NULL cells; it never names a
// dictionary entry.
const NoCode int32 = -1

// newDict creates an empty dictionary.
func newDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Intern returns the code of v, assigning the next dense code on first
// appearance. Callers must serialize Intern with other Interns of the
// same dictionary (the αDB's per-relation writer locks do).
func (d *Dict) Intern(v string) int32 {
	d.mu.RLock()
	id, ok := d.ids[v]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.ids[v]; ok {
		return id
	}
	id = int32(len(d.vals))
	d.vals = append(d.vals, v)
	d.ids[v] = id
	return id
}

// Lookup returns the code of v without interning, and whether v is known.
func (d *Dict) Lookup(v string) (int32, bool) {
	d.mu.RLock()
	id, ok := d.ids[v]
	d.mu.RUnlock()
	return id, ok
}

// Value decodes a code back to its string.
func (d *Dict) Value(code int32) string {
	d.mu.RLock()
	v := d.vals[code]
	d.mu.RUnlock()
	return v
}

// Len returns the number of distinct interned values.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.vals)
	d.mu.RUnlock()
	return n
}

// Values returns the interned values in code order as a point-in-time
// view: entries [0, len) are immutable, so the returned slice stays
// valid while writers keep interning. Do not mutate.
func (d *Dict) Values() []string {
	d.mu.RLock()
	v := d.vals[:len(d.vals):len(d.vals)]
	d.mu.RUnlock()
	return v
}

// ByteSize estimates the dictionary's in-memory footprint.
func (d *Dict) ByteSize() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	// 16 bytes of string header per entry, roughly doubled for the
	// reverse map entry, plus the payload bytes stored once.
	n := int64(len(d.vals)) * 40
	for _, v := range d.vals {
		n += int64(len(v))
	}
	return n
}

// RestoreDict rebuilds a dictionary from values in code order (snapshot
// load).
func RestoreDict(vals []string) *Dict {
	d := &Dict{vals: vals, ids: make(map[string]int32, len(vals))}
	for i, v := range vals {
		d.ids[v] = int32(i)
	}
	return d
}
