package relation

// Dict is a per-column string dictionary: every distinct value of a TEXT
// column is interned once and referenced by a dense int32 code. Columns
// store codes instead of Go strings, which cuts the per-row footprint to
// four bytes, makes equality comparisons integer compares, and lets index
// builders normalize each distinct value exactly once instead of once per
// row.
//
// Codes are assigned in first-appearance order and are never reused, so a
// snapshot that serializes the dictionary in code order restores the exact
// same encoding. A Dict is owned by one column; readers may call Value and
// Lookup concurrently, but interning must be serialized with reads exactly
// like appends to the owning column.
type Dict struct {
	vals []string
	ids  map[string]int32
}

// NoCode is the sentinel code stored for NULL cells; it never names a
// dictionary entry.
const NoCode int32 = -1

// NewDict creates an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Intern returns the code of v, assigning the next dense code on first
// appearance.
func (d *Dict) Intern(v string) int32 {
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := int32(len(d.vals))
	d.vals = append(d.vals, v)
	d.ids[v] = id
	return id
}

// Lookup returns the code of v without interning, and whether v is known.
func (d *Dict) Lookup(v string) (int32, bool) {
	id, ok := d.ids[v]
	return id, ok
}

// Value decodes a code back to its string.
func (d *Dict) Value(code int32) string { return d.vals[code] }

// Len returns the number of distinct interned values.
func (d *Dict) Len() int { return len(d.vals) }

// Values returns the interned values in code order. The slice is
// dictionary-internal: do not mutate.
func (d *Dict) Values() []string { return d.vals }

// ByteSize estimates the dictionary's in-memory footprint.
func (d *Dict) ByteSize() int64 {
	// 16 bytes of string header per entry, roughly doubled for the
	// reverse map entry, plus the payload bytes stored once.
	n := int64(len(d.vals)) * 40
	for _, v := range d.vals {
		n += int64(len(v))
	}
	return n
}

// RestoreDict rebuilds a dictionary from values in code order (snapshot
// load).
func RestoreDict(vals []string) *Dict {
	d := &Dict{vals: vals, ids: make(map[string]int32, len(vals))}
	for i, v := range vals {
		d.ids[v] = int32(i)
	}
	return d
}
