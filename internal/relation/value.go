// Package relation provides the typed in-memory relational storage layer:
// column types, relations (tables) with typed columns and NULL tracking,
// schemas, and primary/foreign-key metadata. It is the substrate on which
// the execution engine (internal/engine) and the abduction-ready database
// (internal/adb) are built; the paper's implementation uses PostgreSQL for
// this role.
package relation

import (
	"fmt"
	"strconv"
)

// ColType identifies the storage type of a column.
type ColType int

const (
	// Int is a 64-bit signed integer column (ids, years, counts).
	Int ColType = iota
	// Float is a 64-bit floating-point column.
	Float
	// String is a text column (names, titles, categorical values).
	String
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case Int:
		return "INTEGER"
	case Float:
		return "DOUBLE"
	case String:
		return "TEXT"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Value is a dynamically typed cell value. The zero Value is NULL.
// Values are small (24 bytes) and passed by value.
type Value struct {
	kind valueKind
	i    int64
	f    float64
	s    string
}

type valueKind uint8

const (
	kindNull valueKind = iota
	kindInt
	kindFloat
	kindString
)

// Null is the NULL value.
var Null = Value{}

// IntVal wraps an int64 as a Value.
func IntVal(v int64) Value { return Value{kind: kindInt, i: v} }

// FloatVal wraps a float64 as a Value.
func FloatVal(v float64) Value { return Value{kind: kindFloat, f: v} }

// StringVal wraps a string as a Value.
func StringVal(v string) Value { return Value{kind: kindString, s: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == kindNull }

// IsInt reports whether the value holds an integer payload.
func (v Value) IsInt() bool { return v.kind == kindInt }

// IsString reports whether the value holds a string payload.
func (v Value) IsString() bool { return v.kind == kindString }

// Int returns the integer payload; it panics if the value is not an Int.
func (v Value) Int() int64 {
	if v.kind != kindInt {
		panic(fmt.Sprintf("relation: Int() on %s value", v.kindName()))
	}
	return v.i
}

// Float returns the float payload, converting from Int if needed.
func (v Value) Float() float64 {
	switch v.kind {
	case kindFloat:
		return v.f
	case kindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("relation: Float() on %s value", v.kindName()))
}

// Str returns the string payload; it panics if the value is not a String.
func (v Value) Str() string {
	if v.kind != kindString {
		panic(fmt.Sprintf("relation: Str() on %s value", v.kindName()))
	}
	return v.s
}

func (v Value) kindName() string {
	switch v.kind {
	case kindNull:
		return "NULL"
	case kindInt:
		return "INTEGER"
	case kindFloat:
		return "DOUBLE"
	case kindString:
		return "TEXT"
	}
	return "?"
}

// Equal reports deep equality of two values. NULL equals only NULL
// (three-valued logic is not needed by the engine: predicates on NULL
// evaluate to false before Equal is consulted).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Allow numeric cross-kind equality (Int 3 == Float 3.0).
		if (v.kind == kindInt || v.kind == kindFloat) && (o.kind == kindInt || o.kind == kindFloat) {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.kind {
	case kindNull:
		return true
	case kindInt:
		return v.i == o.i
	case kindFloat:
		return v.f == o.f
	case kindString:
		return v.s == o.s
	}
	return false
}

// Less orders values of comparable kinds; NULL sorts before everything.
func (v Value) Less(o Value) bool {
	if v.kind == kindNull {
		return o.kind != kindNull
	}
	if o.kind == kindNull {
		return false
	}
	if v.kind == kindString && o.kind == kindString {
		return v.s < o.s
	}
	return v.Float() < o.Float()
}

// String renders the value for display and SQL generation.
func (v Value) String() string {
	switch v.kind {
	case kindNull:
		return "NULL"
	case kindInt:
		return strconv.FormatInt(v.i, 10)
	case kindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case kindString:
		return v.s
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal (strings quoted).
func (v Value) SQLLiteral() string {
	if v.kind == kindString {
		return "'" + v.s + "'"
	}
	return v.String()
}
