package relation

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if IntVal(7).Int() != 7 {
		t.Error("IntVal round trip")
	}
	if FloatVal(2.5).Float() != 2.5 {
		t.Error("FloatVal round trip")
	}
	if StringVal("x").Str() != "x" {
		t.Error("StringVal round trip")
	}
	if IntVal(3).Float() != 3.0 {
		t.Error("Int should widen to Float")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !IntVal(3).Equal(FloatVal(3)) {
		t.Error("3 == 3.0 expected")
	}
	if IntVal(3).Equal(FloatVal(3.5)) {
		t.Error("3 != 3.5 expected")
	}
	if IntVal(3).Equal(StringVal("3")) {
		t.Error("int vs string must differ")
	}
	if !Null.Equal(Null) {
		t.Error("NULL equals NULL in storage comparison")
	}
	if Null.Equal(IntVal(0)) {
		t.Error("NULL != 0")
	}
}

func TestValueLessOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{IntVal(1), IntVal(2), true},
		{IntVal(2), IntVal(1), false},
		{FloatVal(1.5), IntVal(2), true},
		{StringVal("a"), StringVal("b"), true},
		{Null, IntVal(0), true},
		{IntVal(0), Null, false},
		{Null, Null, false},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("case %d: Less(%v,%v)=%v want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestValueSQLLiteral(t *testing.T) {
	if got := StringVal("Comedy").SQLLiteral(); got != "'Comedy'" {
		t.Errorf("got %q", got)
	}
	if got := IntVal(40).SQLLiteral(); got != "40" {
		t.Errorf("got %q", got)
	}
	if got := Null.SQLLiteral(); got != "NULL" {
		t.Errorf("got %q", got)
	}
}

func TestValueLessIrreflexive(t *testing.T) {
	f := func(x int64) bool {
		v := IntVal(x)
		return !v.Less(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueLessTrichotomyInts(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := IntVal(a), IntVal(b)
		lt, gt, eq := va.Less(vb), vb.Less(va), va.Equal(vb)
		n := 0
		if lt {
			n++
		}
		if gt {
			n++
		}
		if eq {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColumnAppendGet(t *testing.T) {
	c := NewColumn("age", Int)
	for i := int64(0); i < 10; i++ {
		if err := c.Append(IntVal(i * 2)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 10 {
		t.Fatalf("len=%d", c.Len())
	}
	if c.Get(3).Int() != 6 {
		t.Errorf("Get(3)=%v", c.Get(3))
	}
	if c.Int64(4) != 8 {
		t.Errorf("Int64(4)=%d", c.Int64(4))
	}
}

func TestColumnNulls(t *testing.T) {
	c := NewColumn("name", String)
	c.Append(StringVal("a"))
	c.Append(Null)
	c.Append(StringVal("b"))
	if c.IsNull(0) || !c.IsNull(1) || c.IsNull(2) {
		t.Error("null bitmap wrong")
	}
	if !c.Get(1).IsNull() {
		t.Error("Get on null cell must be Null")
	}
	if c.Get(2).Str() != "b" {
		t.Error("value after null corrupted")
	}
}

func TestColumnTypeMismatch(t *testing.T) {
	c := NewColumn("age", Int)
	if err := c.Append(StringVal("x")); err == nil {
		t.Error("expected type error")
	}
	f := NewColumn("score", Float)
	if err := f.Append(IntVal(3)); err != nil {
		t.Errorf("int should coerce into float column: %v", err)
	}
	if f.Float64(0) != 3.0 {
		t.Error("coerced value wrong")
	}
}

func TestColumnSet(t *testing.T) {
	c := NewColumn("x", Int)
	c.Append(IntVal(1))
	c.Append(IntVal(2))
	if err := c.Set(0, IntVal(9)); err != nil {
		t.Fatal(err)
	}
	if c.Get(0).Int() != 9 {
		t.Error("Set failed")
	}
	if err := c.Set(1, Null); err != nil {
		t.Fatal(err)
	}
	if !c.IsNull(1) {
		t.Error("Set(Null) failed")
	}
	if err := c.Set(1, IntVal(5)); err != nil {
		t.Fatal(err)
	}
	if c.IsNull(1) || c.Get(1).Int() != 5 {
		t.Error("Set after null failed")
	}
}

func newPersonRel() *Relation {
	r := New("person",
		Col("id", Int),
		Col("name", String),
		Col("gender", String),
		Col("age", Int),
	).SetPrimaryKey("id")
	rows := []struct {
		id     int64
		name   string
		gender string
		age    int64
	}{
		{1, "Tom Cruise", "Male", 50},
		{2, "Clint Eastwood", "Male", 90},
		{3, "Tom Hanks", "Male", 60},
		{4, "Julia Roberts", "Female", 50},
		{5, "Emma Stone", "Female", 29},
		{6, "Julianne Moore", "Female", 60},
	}
	for _, p := range rows {
		r.MustAppend(IntVal(p.id), StringVal(p.name), StringVal(p.gender), IntVal(p.age))
	}
	return r
}

func TestRelationBasics(t *testing.T) {
	r := newPersonRel()
	if r.NumRows() != 6 || r.NumCols() != 4 {
		t.Fatalf("dims %dx%d", r.NumRows(), r.NumCols())
	}
	if r.Get(1, "name").Str() != "Clint Eastwood" {
		t.Error("Get by name failed")
	}
	if r.ColumnIndex("gender") != 2 {
		t.Error("ColumnIndex")
	}
	if r.ColumnIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
	if !r.HasColumn("age") || r.HasColumn("nope") {
		t.Error("HasColumn")
	}
	row := r.Row(4)
	if row[1].Str() != "Emma Stone" || row[3].Int() != 29 {
		t.Errorf("Row(4)=%v", row)
	}
}

func TestRelationAppendArity(t *testing.T) {
	r := New("t", Col("a", Int), Col("b", Int))
	if err := r.Append(IntVal(1)); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestRelationDistinctValues(t *testing.T) {
	r := newPersonRel()
	vals := r.DistinctValues("gender")
	if len(vals) != 2 || vals[0].Str() != "Female" || vals[1].Str() != "Male" {
		t.Errorf("distinct=%v", vals)
	}
	ages := r.DistinctValues("age")
	if len(ages) != 4 {
		t.Errorf("distinct ages=%v", ages)
	}
	if ages[0].Int() != 29 {
		t.Error("distinct values must be sorted")
	}
}

func TestDatabaseValidate(t *testing.T) {
	d := NewDatabase("test")
	p := d.AddRelation(newPersonRel())
	_ = p
	research := New("research",
		Col("aid", Int),
		Col("interest", String),
	).AddForeignKey("aid", "person", "id")
	d.AddRelation(research)
	research.MustAppend(IntVal(1), StringVal("acting"))
	if err := d.Validate(); err != nil {
		t.Fatalf("valid db rejected: %v", err)
	}

	bad := NewDatabase("bad")
	r := New("r", Col("id", Int)).SetPrimaryKey("id")
	r.MustAppend(IntVal(1))
	r.MustAppend(IntVal(1))
	bad.AddRelation(r)
	if err := bad.Validate(); err == nil {
		t.Error("duplicate PK must fail validation")
	}
}

func TestDatabaseValidateBadFK(t *testing.T) {
	d := NewDatabase("t")
	r := New("r", Col("x", Int)).AddForeignKey("x", "missing", "id")
	d.AddRelation(r)
	if err := d.Validate(); err == nil {
		t.Error("FK to missing relation must fail")
	}
}

func TestDatabaseKinds(t *testing.T) {
	d := NewDatabase("t")
	d.AddRelation(New("person", Col("id", Int)))
	d.AddRelation(New("genre", Col("id", Int)))
	d.AddRelation(New("castinfo", Col("pid", Int)))
	d.MarkEntity("person")
	d.MarkProperty("genre")
	if d.Kind("person") != KindEntity || d.Kind("genre") != KindProperty || d.Kind("castinfo") != KindUnknown {
		t.Error("kinds wrong")
	}
	if got := d.EntityRelations(); len(got) != 1 || got[0] != "person" {
		t.Errorf("entities=%v", got)
	}
	if got := d.PropertyRelations(); len(got) != 1 || got[0] != "genre" {
		t.Errorf("properties=%v", got)
	}
}

func TestDatabaseOrderAndSizes(t *testing.T) {
	d := NewDatabase("t")
	d.AddRelation(newPersonRel())
	d.AddRelation(New("empty", Col("x", Int)))
	names := d.RelationNames()
	if len(names) != 2 || names[0] != "person" || names[1] != "empty" {
		t.Errorf("names=%v", names)
	}
	if d.TotalRows() != 6 {
		t.Errorf("TotalRows=%d", d.TotalRows())
	}
	if d.ByteSize() <= 0 {
		t.Error("ByteSize must be positive")
	}
	if d.NumRelations() != 2 {
		t.Error("NumRelations")
	}
}

func TestColumnByteSizeGrows(t *testing.T) {
	c := NewColumn("s", String)
	base := c.ByteSize()
	c.Append(StringVal("hello world"))
	if c.ByteSize() <= base {
		t.Error("ByteSize should grow after append")
	}
}

func TestNullBackfill(t *testing.T) {
	// Appending a NULL after non-NULLs must backfill the bitmap.
	c := NewColumn("x", Int)
	c.Append(IntVal(1))
	c.Append(IntVal(2))
	c.Append(Null)
	if c.IsNull(0) || c.IsNull(1) || !c.IsNull(2) {
		t.Error("backfilled bitmap wrong")
	}
	// And subsequent non-NULL appends keep the bitmap in sync.
	c.Append(IntVal(4))
	if c.IsNull(3) {
		t.Error("bitmap out of sync after backfill")
	}
	if c.Len() != 4 {
		t.Error("len wrong")
	}
}
