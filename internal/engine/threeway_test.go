package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"squid/internal/relation"
)

// threeWayReference evaluates e ⋈ f ⋈ d with predicates by triple nested
// loops, as the oracle for the hash-join path on star joins.
func threeWayReference(e, f, d *relation.Relation, preds []Pred) map[string]int {
	out := map[string]int{}
	eid, feid, fdid, did := e.Column("id"), f.Column("eid"), f.Column("did"), d.Column("id")
	match := func(rel string, row int, r *relation.Relation) bool {
		for _, p := range preds {
			if p.Rel != rel {
				continue
			}
			if !p.Matches(r.Get(row, p.Col)) {
				return false
			}
		}
		return true
	}
	for i := 0; i < e.NumRows(); i++ {
		if !match("e", i, e) {
			continue
		}
		for j := 0; j < f.NumRows(); j++ {
			if feid.IsNull(j) || eid.IsNull(i) || feid.Int64(j) != eid.Int64(i) || !match("f", j, f) {
				continue
			}
			for k := 0; k < d.NumRows(); k++ {
				if fdid.IsNull(j) || did.IsNull(k) || fdid.Int64(j) != did.Int64(k) || !match("d", k, d) {
					continue
				}
				key := e.Get(i, "v").String() + "|" + d.Get(k, "v").String()
				out[key]++
			}
		}
	}
	return out
}

// TestThreeWayJoinMatchesReference cross-checks the executor on random
// star schemas (entity ⋈ fact ⋈ dimension), the join shape every SQuID
// query uses.
func TestThreeWayJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 60; trial++ {
		db := relation.NewDatabase("star")
		e := relation.New("e", relation.Col("id", relation.Int), relation.Col("v", relation.Int))
		d := relation.New("d", relation.Col("id", relation.Int), relation.Col("v", relation.Int))
		f := relation.New("f", relation.Col("eid", relation.Int), relation.Col("did", relation.Int))
		ne, nd, nf := 1+rng.Intn(15), 1+rng.Intn(8), rng.Intn(60)
		for i := 0; i < ne; i++ {
			e.MustAppend(relation.IntVal(int64(i)), relation.IntVal(int64(rng.Intn(5))))
		}
		for i := 0; i < nd; i++ {
			d.MustAppend(relation.IntVal(int64(i)), relation.IntVal(int64(rng.Intn(5))))
		}
		for i := 0; i < nf; i++ {
			f.MustAppend(relation.IntVal(int64(rng.Intn(ne+2))), relation.IntVal(int64(rng.Intn(nd+2))))
		}
		db.AddRelation(e)
		db.AddRelation(d)
		db.AddRelation(f)

		var preds []Pred
		if rng.Intn(2) == 0 {
			preds = append(preds, Pred{Rel: "e", Col: "v", Op: OpLE, Val: relation.IntVal(int64(rng.Intn(5)))})
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, Pred{Rel: "d", Col: "v", Op: OpEq, Val: relation.IntVal(int64(rng.Intn(5)))})
		}

		q := &Query{
			From: []string{"e", "f", "d"},
			Joins: []Join{
				{LeftRel: "e", LeftCol: "id", RightRel: "f", RightCol: "eid"},
				{LeftRel: "f", LeftCol: "did", RightRel: "d", RightCol: "id"},
			},
			Preds:  preds,
			Select: []ColRef{{Rel: "e", Col: "v"}, {Rel: "d", Col: "v"}},
		}
		res, err := NewExecutor(db).Execute(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := map[string]int{}
		for _, row := range res.Rows {
			got[row[0].String()+"|"+row[1].String()]++
		}
		want := threeWayReference(e, f, d, preds)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: three-way join mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestGroupByHavingOnStarJoin property-checks HAVING count thresholds on
// the star shape against a manual reference count.
func TestGroupByHavingOnStarJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(159))
	for trial := 0; trial < 40; trial++ {
		db := relation.NewDatabase("star")
		e := relation.New("e", relation.Col("id", relation.Int))
		f := relation.New("f", relation.Col("eid", relation.Int))
		ne := 2 + rng.Intn(10)
		for i := 0; i < ne; i++ {
			e.MustAppend(relation.IntVal(int64(i)))
		}
		counts := map[int64]int{}
		for i := rng.Intn(80); i > 0; i-- {
			id := int64(rng.Intn(ne))
			counts[id]++
			f.MustAppend(relation.IntVal(id))
		}
		db.AddRelation(e)
		db.AddRelation(f)
		threshold := 1 + rng.Intn(6)
		q := &Query{
			From:          []string{"e", "f"},
			Joins:         []Join{{LeftRel: "e", LeftCol: "id", RightRel: "f", RightCol: "eid"}},
			Select:        []ColRef{{Rel: "e", Col: "id"}},
			GroupBy:       []ColRef{{Rel: "e", Col: "id"}},
			HavingCountGE: threshold,
		}
		res, err := NewExecutor(db).Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, c := range counts {
			if c >= threshold {
				want++
			}
		}
		if res.NumRows() != want {
			t.Fatalf("trial %d: groups=%d want %d", trial, res.NumRows(), want)
		}
	}
}
