package engine

import (
	"sort"
	"strings"

	"squid/internal/relation"
)

// Result holds the projected tuples of an executed query.
type Result struct {
	Cols []string
	Rows [][]relation.Value
}

// NumRows returns the result cardinality.
func (r *Result) NumRows() int { return len(r.Rows) }

// encodeTuple produces a canonical string key for a projected tuple so
// results can be compared as sets (precision/recall, DISTINCT,
// intersection).
func encodeTuple(row []relation.Value) string {
	var b strings.Builder
	for i, v := range row {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// TupleSet returns the set of canonical tuple encodings.
func (r *Result) TupleSet() map[string]struct{} {
	s := make(map[string]struct{}, len(r.Rows))
	for _, row := range r.Rows {
		s[encodeTuple(row)] = struct{}{}
	}
	return s
}

// Strings returns single-column results as a sorted string slice;
// it panics when the result has more than one column.
func (r *Result) Strings() []string {
	if len(r.Cols) != 1 {
		panic("engine: Strings() on multi-column result")
	}
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, row[0].String())
	}
	sort.Strings(out)
	return out
}

// distinct removes duplicate tuples, preserving first-seen order.
func (r *Result) distinct() {
	seen := make(map[string]struct{}, len(r.Rows))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		k := encodeTuple(row)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	r.Rows = out
}

// intersect keeps only tuples also present in other.
func (r *Result) intersect(other *Result) {
	keep := other.TupleSet()
	out := r.Rows[:0]
	for _, row := range r.Rows {
		if _, ok := keep[encodeTuple(row)]; ok {
			out = append(out, row)
		}
	}
	r.Rows = out
}
