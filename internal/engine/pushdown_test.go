package engine

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"squid/internal/index"
	"squid/internal/relation"
)

// pushdownDB builds a relation comfortably above indexMinRows so point
// predicates take the hash-index path.
func pushdownDB(n int) *relation.Database {
	db := relation.NewDatabase("push")
	items := relation.New("items",
		relation.Col("id", relation.Int),
		relation.Col("cat", relation.String),
		relation.Col("score", relation.Int),
	).SetPrimaryKey("id")
	cats := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		items.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(cats[i%len(cats)]),
			relation.IntVal(int64(i%10)),
		)
	}
	db.AddRelation(items)

	tags := relation.New("tags",
		relation.Col("item_id", relation.Int),
		relation.Col("tag", relation.String),
	).AddForeignKey("item_id", "items", "id")
	for i := 0; i < n; i += 2 {
		tags.MustAppend(relation.IntVal(int64(i)), relation.StringVal(fmt.Sprintf("tag%d", i%5)))
	}
	db.AddRelation(tags)
	return db
}

// scanRows evaluates predicates by brute force, the oracle for the
// index-backed filterRows.
func scanRows(rel *relation.Relation, preds []Pred) []int {
	var out []int
	for row := 0; row < rel.NumRows(); row++ {
		ok := true
		for _, p := range preds {
			if !p.Matches(rel.Column(p.Col).Get(row)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

func TestFilterRowsIndexVsScan(t *testing.T) {
	db := pushdownDB(200)
	e := NewExecutor(db)
	items := db.Relation("items")
	cases := [][]Pred{
		{{Rel: "items", Col: "id", Op: OpEq, Val: relation.IntVal(17)}},
		{{Rel: "items", Col: "cat", Op: OpEq, Val: relation.StringVal("beta")}},
		{
			{Rel: "items", Col: "cat", Op: OpEq, Val: relation.StringVal("gamma")},
			{Rel: "items", Col: "score", Op: OpGE, Val: relation.IntVal(5)},
		},
		{{Rel: "items", Col: "cat", Op: OpIn, Vals: []relation.Value{
			relation.StringVal("alpha"), relation.StringVal("delta")}}},
		{{Rel: "items", Col: "cat", Op: OpEq, Val: relation.StringVal("missing")}},
		{{Rel: "items", Col: "score", Op: OpGE, Val: relation.IntVal(8)}}, // range pushdown
		{{Rel: "items", Col: "score", Op: OpLE, Val: relation.IntVal(2)}},
		{{Rel: "items", Col: "score", Op: OpGT, Val: relation.IntVal(7)}},
		{{Rel: "items", Col: "score", Op: OpLT, Val: relation.IntVal(3)}},
		{ // BETWEEN: both bounds combine into one sorted-index probe
			{Rel: "items", Col: "score", Op: OpGE, Val: relation.IntVal(3)},
			{Rel: "items", Col: "score", Op: OpLE, Val: relation.IntVal(6)},
		},
		{ // strict BETWEEN
			{Rel: "items", Col: "score", Op: OpGT, Val: relation.IntVal(3)},
			{Rel: "items", Col: "score", Op: OpLT, Val: relation.IntVal(6)},
		},
		{ // empty range
			{Rel: "items", Col: "score", Op: OpGE, Val: relation.IntVal(6)},
			{Rel: "items", Col: "score", Op: OpLE, Val: relation.IntVal(3)},
		},
	}
	for i, preds := range cases {
		got := e.filterRows(items, preds)
		want := scanRows(items, preds)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("case %d: filterRows=%v want %v", i, got, want)
		}
		if !sort.IntsAreSorted(got) {
			t.Errorf("case %d: rows not sorted", i)
		}
	}
}

// rangeEdgeDB builds a relation above indexMinRows with a float column
// carrying NULLs and a lexicographic string column, the substrate for
// the range-pushdown edge cases: the float column exercises the sorted
// numeric index, the string column has no numeric index at all.
func rangeEdgeDB(n int) *relation.Database {
	db := relation.NewDatabase("edges")
	m := relation.New("measures",
		relation.Col("id", relation.Int),
		relation.Col("temp", relation.Float),
		relation.Col("grade", relation.String),
		relation.Col("score", relation.Int),
	).SetPrimaryKey("id")
	grades := []string{"A", "B", "C", "D", "F"}
	for i := 0; i < n; i++ {
		temp := relation.FloatVal(float64(i%20) + 0.5)
		if i%7 == 3 {
			temp = relation.Null // NULLs must never satisfy a range
		}
		m.MustAppend(
			relation.IntVal(int64(i)),
			temp,
			relation.StringVal(grades[i%len(grades)]),
			relation.IntVal(int64(i%10)),
		)
	}
	db.AddRelation(m)
	return db
}

// TestRangePushdownEdgeCases pins the index-vs-scan equivalence on the
// awkward shapes: reversed BETWEEN bounds, empty ranges beyond either
// end of the data, open-ended one-sided scans, ranges over a column
// with NULLs, and range predicates on a string column — which has no
// numeric index, so the executor must fall back to scanning (or verify
// against another predicate's candidates) and still answer correctly.
func TestRangePushdownEdgeCases(t *testing.T) {
	db := rangeEdgeDB(210)
	e := NewExecutor(db)
	m := db.Relation("measures")
	fv := relation.FloatVal
	iv := relation.IntVal
	sv := relation.StringVal
	cases := []struct {
		name  string
		preds []Pred
		empty bool // the oracle must agree AND the result must be empty
	}{
		{"reversed BETWEEN", []Pred{
			{Rel: "measures", Col: "temp", Op: OpGE, Val: fv(15)},
			{Rel: "measures", Col: "temp", Op: OpLE, Val: fv(5)},
		}, true},
		{"strict crossing bounds", []Pred{
			{Rel: "measures", Col: "temp", Op: OpGT, Val: fv(5.5)},
			{Rel: "measures", Col: "temp", Op: OpLT, Val: fv(5.5)},
		}, true},
		{"point BETWEEN (lo == hi)", []Pred{
			{Rel: "measures", Col: "temp", Op: OpGE, Val: fv(5.5)},
			{Rel: "measures", Col: "temp", Op: OpLE, Val: fv(5.5)},
		}, false},
		{"empty beyond max", []Pred{
			{Rel: "measures", Col: "temp", Op: OpGT, Val: fv(1000)},
		}, true},
		{"empty below min", []Pred{
			{Rel: "measures", Col: "temp", Op: OpLT, Val: fv(-1000)},
		}, true},
		{"open-ended GE", []Pred{
			{Rel: "measures", Col: "temp", Op: OpGE, Val: fv(10)},
		}, false},
		{"open-ended LE", []Pred{
			{Rel: "measures", Col: "temp", Op: OpLE, Val: fv(10)},
		}, false},
		{"open-ended covers everything", []Pred{
			{Rel: "measures", Col: "temp", Op: OpGE, Val: fv(-1000)},
		}, false},
		{"tightening duplicate bounds", []Pred{
			{Rel: "measures", Col: "temp", Op: OpGE, Val: fv(3)},
			{Rel: "measures", Col: "temp", Op: OpGE, Val: fv(8)},
			{Rel: "measures", Col: "temp", Op: OpLE, Val: fv(30)},
			{Rel: "measures", Col: "temp", Op: OpLE, Val: fv(12)},
		}, false},
		{"string range: no numeric index", []Pred{
			{Rel: "measures", Col: "grade", Op: OpGE, Val: sv("B")},
		}, false},
		{"string reversed BETWEEN", []Pred{
			{Rel: "measures", Col: "grade", Op: OpGE, Val: sv("D")},
			{Rel: "measures", Col: "grade", Op: OpLE, Val: sv("B")},
		}, true},
		{"string range verified on point-index candidates", []Pred{
			{Rel: "measures", Col: "grade", Op: OpEq, Val: sv("C")},
			{Rel: "measures", Col: "temp", Op: OpGE, Val: fv(4)},
		}, false},
		{"int and float ranges on different columns", []Pred{
			{Rel: "measures", Col: "score", Op: OpGE, Val: iv(4)},
			{Rel: "measures", Col: "temp", Op: OpLE, Val: fv(9)},
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := e.filterRows(m, tc.preds)
			want := scanRows(m, tc.preds)
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("filterRows=%v want %v", got, want)
			}
			if tc.empty && len(got) != 0 {
				t.Fatalf("expected an empty result, got %d rows", len(got))
			}
			if !tc.empty && len(got) == 0 {
				t.Fatalf("edge case degenerated: oracle is empty too, case proves nothing")
			}
			if !sort.IntsAreSorted(got) {
				t.Fatal("rows not sorted")
			}
		})
	}

	// The same shapes must hold on a relation too small for the index
	// pool (pure scan path).
	small := rangeEdgeDB(indexMinRows / 2)
	se := NewExecutor(small)
	sm := small.Relation("measures")
	for _, tc := range cases {
		got := se.filterRows(sm, tc.preds)
		want := scanRows(sm, tc.preds)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("small relation, %s: filterRows=%v want %v", tc.name, got, want)
		}
	}
}

// TestExecuteReversedRange runs a reversed BETWEEN through the full
// Execute path: a well-formed query whose range is empty must return
// zero rows, not an error.
func TestExecuteReversedRange(t *testing.T) {
	db := rangeEdgeDB(210)
	q := &Query{
		From: []string{"measures"},
		Preds: []Pred{
			{Rel: "measures", Col: "temp", Op: OpGE, Val: relation.FloatVal(18)},
			{Rel: "measures", Col: "temp", Op: OpLE, Val: relation.FloatVal(2)},
		},
		Select: []ColRef{{Rel: "measures", Col: "id"}},
	}
	res, err := NewExecutor(db).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Errorf("reversed range returned %d rows, want 0", res.NumRows())
	}
}

// TestRangePushdownAfterAppend verifies the sorted numeric index stays
// consistent when rows are appended through the shared pool's NoteAppend
// (the incremental-maintenance contract of the αDB).
func TestRangePushdownAfterAppend(t *testing.T) {
	db := pushdownDB(200)
	pool := index.NewIndexSet()
	e := NewExecutorWithIndexes(db, pool)
	items := db.Relation("items")
	preds := []Pred{{Rel: "items", Col: "score", Op: OpGE, Val: relation.IntVal(7)}}

	before := e.filterRows(items, preds)
	if want := scanRows(items, preds); !reflect.DeepEqual(before, want) {
		t.Fatalf("pre-append filterRows=%v want %v", before, want)
	}
	// Append rows and maintain the pool as the αDB does.
	for i := 0; i < 10; i++ {
		items.MustAppend(
			relation.IntVal(int64(1000+i)),
			relation.StringVal("epsilon"),
			relation.IntVal(int64(9)),
		)
		pool.NoteAppend(items, items.NumRows()-1)
	}
	got := e.filterRows(items, preds)
	want := scanRows(items, preds)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-append filterRows=%v want %v", got, want)
	}
	if len(got) != len(before)+10 {
		t.Fatalf("expected %d rows, got %d", len(before)+10, len(got))
	}
}

func TestExecutePushdownJoin(t *testing.T) {
	db := pushdownDB(200)
	q := &Query{
		From:  []string{"items", "tags"},
		Joins: []Join{{LeftRel: "items", LeftCol: "id", RightRel: "tags", RightCol: "item_id"}},
		Preds: []Pred{
			{Rel: "items", Col: "cat", Op: OpEq, Val: relation.StringVal("alpha")},
			{Rel: "tags", Col: "tag", Op: OpEq, Val: relation.StringVal("tag0")},
		},
		Select:   []ColRef{{Rel: "items", Col: "id"}},
		Distinct: true,
	}
	res, err := NewExecutor(db).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: items with cat=alpha (id%4==0) that carry tag0
	// (even ids with id%5==0 → id%10==0 among even rows).
	var want []string
	for i := 0; i < 200; i += 2 {
		if i%4 == 0 && i%5 == 0 {
			want = append(want, fmt.Sprintf("%d", i))
		}
	}
	got := res.Strings()
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pushdown join = %v want %v", got, want)
	}
}

// TestExecutorSharedPoolConcurrent runs queries from many goroutines
// against one executor sharing an index pool (the DiscoverBatch engine
// configuration); meaningful under -race.
func TestExecutorSharedPoolConcurrent(t *testing.T) {
	db := pushdownDB(200)
	pool := index.NewIndexSet()
	e := NewExecutorWithIndexes(db, pool)
	q := &Query{
		From:   []string{"items"},
		Preds:  []Pred{{Rel: "items", Col: "cat", Op: OpEq, Val: relation.StringVal("beta")}},
		Select: []ColRef{{Rel: "items", Col: "id"}},
	}
	want, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := e.Execute(q)
				if err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				if res.NumRows() != want.NumRows() {
					t.Errorf("rows %d want %d", res.NumRows(), want.NumRows())
					return
				}
			}
		}()
	}
	wg.Wait()
}
