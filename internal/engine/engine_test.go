package engine

import (
	"reflect"
	"testing"

	"squid/internal/relation"
)

// academicsDB builds the CS-Academics excerpt of Fig 1 of the paper.
func academicsDB() *relation.Database {
	db := relation.NewDatabase("cs_academics")
	a := relation.New("academics",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	names := []string{"Thomas Cormen", "Dan Suciu", "Jiawei Han", "Sam Madden", "James Kurose", "Joseph Hellerstein"}
	for i, n := range names {
		a.MustAppend(relation.IntVal(int64(100+i)), relation.StringVal(n))
	}
	db.AddRelation(a)

	r := relation.New("research",
		relation.Col("aid", relation.Int),
		relation.Col("interest", relation.String),
	).AddForeignKey("aid", "academics", "id")
	rows := []struct {
		aid      int64
		interest string
	}{
		{100, "algorithms"},
		{101, "data management"},
		{102, "data mining"},
		{103, "data management"},
		{103, "distributed systems"},
		{104, "computer networks"},
		{105, "data management"},
		{105, "distributed systems"},
	}
	for _, row := range rows {
		r.MustAppend(relation.IntVal(row.aid), relation.StringVal(row.interest))
	}
	db.AddRelation(r)
	return db
}

// movieDB builds a small IMDb-style star schema for aggregation tests
// (Fig 5 of the paper: Jim Carrey has 3 comedies, Ewan McGregor 2,
// Lauren Holly 1).
func movieDB() *relation.Database {
	db := relation.NewDatabase("mini_imdb")
	p := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	for i, n := range []string{"Jim Carrey", "Ewan McGregor", "Lauren Holly"} {
		p.MustAppend(relation.IntVal(int64(1+i)), relation.StringVal(n))
	}
	db.AddRelation(p)

	m := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
	).SetPrimaryKey("id")
	for i, t := range []string{"Bruce Almighty", "Dumb and Dumber", "I Love You Phillip Morris", "Trainspotting", "Big Fish"} {
		m.MustAppend(relation.IntVal(int64(10+i)), relation.StringVal(t))
	}
	db.AddRelation(m)

	g := relation.New("genre",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	for i, n := range []string{"Comedy", "Fantasy", "Drama"} {
		g.MustAppend(relation.IntVal(int64(100+i)), relation.StringVal(n))
	}
	db.AddRelation(g)

	ci := relation.New("castinfo",
		relation.Col("person_id", relation.Int),
		relation.Col("movie_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").AddForeignKey("movie_id", "movie", "id")
	// Jim Carrey: 10,11,12 (three comedies); Ewan: 11,13; Lauren: 10.
	casts := [][2]int64{{1, 10}, {1, 11}, {1, 12}, {2, 11}, {2, 13}, {3, 10}}
	for _, c := range casts {
		ci.MustAppend(relation.IntVal(c[0]), relation.IntVal(c[1]))
	}
	db.AddRelation(ci)

	mg := relation.New("movietogenre",
		relation.Col("movie_id", relation.Int),
		relation.Col("genre_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("genre_id", "genre", "id")
	// All of 10,11,12,13 are comedies; 14 is drama; 10 also fantasy.
	mgs := [][2]int64{{10, 100}, {11, 100}, {12, 100}, {13, 100}, {14, 102}, {10, 101}}
	for _, x := range mgs {
		mg.MustAppend(relation.IntVal(x[0]), relation.IntVal(x[1]))
	}
	db.AddRelation(mg)
	return db
}

func TestProjectOnly(t *testing.T) {
	ex := NewExecutor(academicsDB())
	q := &Query{
		From:   []string{"academics"},
		Select: []ColRef{{"academics", "name"}},
	}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 {
		t.Errorf("rows=%d want 6", res.NumRows())
	}
}

// TestPaperQ2 reproduces Q2 of the paper: data-management researchers.
func TestPaperQ2(t *testing.T) {
	ex := NewExecutor(academicsDB())
	q := &Query{
		From:  []string{"academics", "research"},
		Joins: []Join{{"research", "aid", "academics", "id"}},
		Preds: []Pred{{Rel: "research", Col: "interest", Op: OpEq, Val: relation.StringVal("data management")}},
		Select: []ColRef{
			{"academics", "name"},
		},
	}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	want := []string{"Dan Suciu", "Joseph Hellerstein", "Sam Madden"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestPredicateOps(t *testing.T) {
	db := relation.NewDatabase("t")
	r := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("age", relation.Int),
	)
	for i, age := range []int64{50, 90, 60, 50, 29, 60} {
		r.MustAppend(relation.IntVal(int64(i+1)), relation.IntVal(age))
	}
	db.AddRelation(r)
	ex := NewExecutor(db)

	count := func(preds ...Pred) int {
		q := &Query{From: []string{"person"}, Preds: preds, Select: []ColRef{{"person", "id"}}}
		n, err := ex.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count(Pred{Rel: "person", Col: "age", Op: OpEq, Val: relation.IntVal(60)}); got != 2 {
		t.Errorf("eq: %d", got)
	}
	if got := count(Pred{Rel: "person", Col: "age", Op: OpGE, Val: relation.IntVal(60)}); got != 3 {
		t.Errorf("ge: %d", got)
	}
	if got := count(Pred{Rel: "person", Col: "age", Op: OpLE, Val: relation.IntVal(50)}); got != 3 {
		t.Errorf("le: %d", got)
	}
	if got := count(
		Pred{Rel: "person", Col: "age", Op: OpGE, Val: relation.IntVal(50)},
		Pred{Rel: "person", Col: "age", Op: OpLE, Val: relation.IntVal(90)},
	); got != 5 {
		t.Errorf("range: %d", got)
	}
	if got := count(Pred{Rel: "person", Col: "age", Op: OpIn, Vals: []relation.Value{relation.IntVal(29), relation.IntVal(90)}}); got != 2 {
		t.Errorf("in: %d", got)
	}
}

func TestNullsNeverMatch(t *testing.T) {
	db := relation.NewDatabase("t")
	r := relation.New("x", relation.Col("v", relation.Int))
	r.MustAppend(relation.IntVal(1))
	r.MustAppend(relation.Null)
	db.AddRelation(r)
	ex := NewExecutor(db)
	for _, op := range []Op{OpEq, OpGE, OpLE} {
		q := &Query{
			From:   []string{"x"},
			Preds:  []Pred{{Rel: "x", Col: "v", Op: op, Val: relation.IntVal(1)}},
			Select: []ColRef{{"x", "v"}},
		}
		n, err := ex.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("op %v matched NULL: n=%d", op, n)
		}
	}
}

// TestPaperQ4Aggregation reproduces the shape of Q4: actors with at least
// K comedies, via GROUP BY + HAVING.
func TestPaperQ4Aggregation(t *testing.T) {
	ex := NewExecutor(movieDB())
	mkQuery := func(minCount int) *Query {
		return &Query{
			From: []string{"person", "castinfo", "movietogenre", "genre"},
			Joins: []Join{
				{"person", "id", "castinfo", "person_id"},
				{"castinfo", "movie_id", "movietogenre", "movie_id"},
				{"movietogenre", "genre_id", "genre", "id"},
			},
			Preds:         []Pred{{Rel: "genre", Col: "name", Op: OpEq, Val: relation.StringVal("Comedy")}},
			Select:        []ColRef{{"person", "name"}},
			GroupBy:       []ColRef{{"person", "id"}},
			HavingCountGE: minCount,
		}
	}
	res, err := ex.Execute(mkQuery(2))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	want := []string{"Ewan McGregor", "Jim Carrey"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("≥2 comedies: got %v want %v", got, want)
	}
	res3, err := ex.Execute(mkQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := res3.Strings(); !reflect.DeepEqual(got, []string{"Jim Carrey"}) {
		t.Errorf("≥3 comedies: got %v", got)
	}
}

func TestDistinct(t *testing.T) {
	ex := NewExecutor(academicsDB())
	q := &Query{
		From:     []string{"research"},
		Select:   []ColRef{{"research", "interest"}},
		Distinct: true,
	}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Errorf("distinct interests=%d want 5", res.NumRows())
	}
}

func TestIntersection(t *testing.T) {
	ex := NewExecutor(academicsDB())
	dataMgmt := &Query{
		From:   []string{"academics", "research"},
		Joins:  []Join{{"research", "aid", "academics", "id"}},
		Preds:  []Pred{{Rel: "research", Col: "interest", Op: OpEq, Val: relation.StringVal("data management")}},
		Select: []ColRef{{"academics", "name"}},
	}
	distSys := dataMgmt.Clone()
	distSys.Preds[0].Val = relation.StringVal("distributed systems")
	q := dataMgmt.Clone()
	q.Intersect = []*Query{distSys}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	want := []string{"Joseph Hellerstein", "Sam Madden"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestJoinOrderIndependence(t *testing.T) {
	// The same 4-way join expressed with relations listed in a different
	// order must produce the same result set.
	ex := NewExecutor(movieDB())
	base := &Query{
		From: []string{"person", "castinfo", "movietogenre", "genre"},
		Joins: []Join{
			{"person", "id", "castinfo", "person_id"},
			{"castinfo", "movie_id", "movietogenre", "movie_id"},
			{"movietogenre", "genre_id", "genre", "id"},
		},
		Preds:  []Pred{{Rel: "genre", Col: "name", Op: OpEq, Val: relation.StringVal("Comedy")}},
		Select: []ColRef{{"person", "name"}},
	}
	shuffled := base.Clone()
	shuffled.From = []string{"genre", "movietogenre", "castinfo", "person"}
	r1, err := ex.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Execute(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.TupleSet(), r2.TupleSet()) {
		t.Errorf("join order changed result: %v vs %v", r1.Strings(), r2.Strings())
	}
}

func TestDisconnectedJoinGraph(t *testing.T) {
	ex := NewExecutor(movieDB())
	q := &Query{
		From:   []string{"person", "genre"},
		Select: []ColRef{{"person", "name"}},
	}
	if _, err := ex.Execute(q); err == nil {
		t.Error("disconnected join graph must error")
	}
}

func TestErrorPaths(t *testing.T) {
	ex := NewExecutor(academicsDB())
	cases := []*Query{
		{From: nil, Select: []ColRef{{"academics", "name"}}},
		{From: []string{"missing"}, Select: []ColRef{{"missing", "x"}}},
		{From: []string{"academics"}, Select: []ColRef{{"other", "name"}}},
		{From: []string{"academics"}, Select: []ColRef{{"academics", "missing"}}},
		{From: []string{"academics"}, Preds: []Pred{{Rel: "research", Col: "interest", Op: OpEq, Val: relation.StringVal("x")}}, Select: []ColRef{{"academics", "name"}}},
		{From: []string{"academics"}, Preds: []Pred{{Rel: "academics", Col: "missing", Op: OpEq, Val: relation.StringVal("x")}}, Select: []ColRef{{"academics", "name"}}},
		{From: []string{"academics", "academics"}, Select: []ColRef{{"academics", "name"}}},
		{From: []string{"academics"}, GroupBy: []ColRef{{"research", "aid"}}, Select: []ColRef{{"academics", "name"}}},
		{From: []string{"academics"}, GroupBy: []ColRef{{"academics", "missing"}}, Select: []ColRef{{"academics", "name"}}},
	}
	for i, q := range cases {
		if _, err := ex.Execute(q); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCyclicJoinCondition(t *testing.T) {
	// A second join condition between two already-joined relations acts
	// as a filter (cycle in the join graph).
	db := relation.NewDatabase("t")
	a := relation.New("a", relation.Col("id", relation.Int), relation.Col("x", relation.Int))
	a.MustAppend(relation.IntVal(1), relation.IntVal(5))
	a.MustAppend(relation.IntVal(2), relation.IntVal(7))
	db.AddRelation(a)
	b := relation.New("b", relation.Col("aid", relation.Int), relation.Col("x", relation.Int))
	b.MustAppend(relation.IntVal(1), relation.IntVal(5)) // matches both id and x
	b.MustAppend(relation.IntVal(2), relation.IntVal(9)) // id matches, x does not
	db.AddRelation(b)
	ex := NewExecutor(db)
	q := &Query{
		From: []string{"a", "b"},
		Joins: []Join{
			{"a", "id", "b", "aid"},
			{"a", "x", "b", "x"},
		},
		Select: []ColRef{{"a", "id"}},
	}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("cyclic join filter wrong: %v", res.Rows)
	}
}

func TestQueryCounters(t *testing.T) {
	q := &Query{
		From:  []string{"a", "b"},
		Joins: []Join{{"a", "id", "b", "aid"}},
		Preds: []Pred{{Rel: "b", Col: "x", Op: OpEq, Val: relation.IntVal(1)}},
		Intersect: []*Query{{
			From:  []string{"a", "c"},
			Joins: []Join{{"a", "id", "c", "aid"}},
			Preds: []Pred{
				{Rel: "c", Col: "y", Op: OpGE, Val: relation.IntVal(1)},
				{Rel: "c", Col: "y", Op: OpLE, Val: relation.IntVal(9)},
			},
		}},
	}
	if q.NumJoins() != 2 {
		t.Errorf("NumJoins=%d", q.NumJoins())
	}
	if q.NumPreds() != 3 {
		t.Errorf("NumPreds=%d", q.NumPreds())
	}
	if q.TotalPredicates() != 5 {
		t.Errorf("TotalPredicates=%d", q.TotalPredicates())
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := &Query{
		From:      []string{"a"},
		Preds:     []Pred{{Rel: "a", Col: "x", Op: OpEq, Val: relation.IntVal(1)}},
		Select:    []ColRef{{"a", "x"}},
		Intersect: []*Query{{From: []string{"b"}}},
	}
	c := q.Clone()
	c.Preds[0].Val = relation.IntVal(99)
	c.Intersect[0].From[0] = "z"
	if q.Preds[0].Val.Int() != 1 {
		t.Error("Clone shares Preds")
	}
	if q.Intersect[0].From[0] != "b" {
		t.Error("Clone shares Intersect")
	}
}

func TestPredString(t *testing.T) {
	p := Pred{Rel: "genre", Col: "name", Op: OpEq, Val: relation.StringVal("Comedy")}
	if got := p.String(); got != "genre.name = 'Comedy'" {
		t.Errorf("got %q", got)
	}
	in := Pred{Rel: "g", Col: "n", Op: OpIn, Vals: []relation.Value{relation.StringVal("a"), relation.StringVal("b")}}
	if got := in.String(); got != "g.n IN ('a', 'b')" {
		t.Errorf("got %q", got)
	}
	j := Join{"a", "id", "b", "aid"}
	if got := j.String(); got != "a.id = b.aid" {
		t.Errorf("got %q", got)
	}
}

func TestGroupByRepresentativeProjection(t *testing.T) {
	// GROUP BY person.id, SELECT person.name: the projected name must be
	// functionally consistent with the group key.
	ex := NewExecutor(movieDB())
	q := &Query{
		From:          []string{"person", "castinfo"},
		Joins:         []Join{{"person", "id", "castinfo", "person_id"}},
		Select:        []ColRef{{"person", "name"}},
		GroupBy:       []ColRef{{"person", "id"}},
		HavingCountGE: 1,
	}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	want := []string{"Ewan McGregor", "Jim Carrey", "Lauren Holly"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}
