package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"squid/internal/relation"
)

// nestedLoopJoin is a brute-force reference implementation of a two-way
// equi-join with predicates, used to cross-check the hash-join executor
// on randomized inputs.
func nestedLoopJoin(a, b *relation.Relation, aCol, bCol string, preds []Pred, sel []ColRef) [][]relation.Value {
	ac, bc := a.Column(aCol), b.Column(bCol)
	var out [][]relation.Value
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < b.NumRows(); j++ {
			av, bv := ac.Get(i), bc.Get(j)
			if av.IsNull() || bv.IsNull() || !av.Equal(bv) {
				continue
			}
			ok := true
			for _, p := range preds {
				var v relation.Value
				if p.Rel == a.Name {
					v = a.Get(i, p.Col)
				} else {
					v = b.Get(j, p.Col)
				}
				if !p.Matches(v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			row := make([]relation.Value, len(sel))
			for k, s := range sel {
				if s.Rel == a.Name {
					row[k] = a.Get(i, s.Col)
				} else {
					row[k] = b.Get(j, s.Col)
				}
			}
			out = append(out, row)
		}
	}
	return out
}

func randomPair(rng *rand.Rand) (*relation.Database, *relation.Relation, *relation.Relation) {
	db := relation.NewDatabase("rand")
	a := relation.New("a",
		relation.Col("id", relation.Int),
		relation.Col("v", relation.Int),
	)
	b := relation.New("b",
		relation.Col("aid", relation.Int),
		relation.Col("w", relation.Int),
	)
	na, nb := 1+rng.Intn(40), 1+rng.Intn(60)
	for i := 0; i < na; i++ {
		a.MustAppend(relation.IntVal(int64(rng.Intn(15))), relation.IntVal(int64(rng.Intn(10))))
	}
	for i := 0; i < nb; i++ {
		v := relation.IntVal(int64(rng.Intn(15)))
		if rng.Intn(10) == 0 {
			v = relation.Null // exercise NULL join keys
		}
		b.MustAppend(v, relation.IntVal(int64(rng.Intn(10))))
	}
	db.AddRelation(a)
	db.AddRelation(b)
	return db, a, b
}

// TestHashJoinMatchesNestedLoop cross-checks the executor against the
// nested-loop reference on 100 random schemas/predicates.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(20190625)) // paper's arXiv date as seed
	for trial := 0; trial < 100; trial++ {
		db, a, b := randomPair(rng)
		preds := []Pred{}
		if rng.Intn(2) == 0 {
			preds = append(preds, Pred{Rel: "a", Col: "v", Op: OpGE, Val: relation.IntVal(int64(rng.Intn(10)))})
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, Pred{Rel: "b", Col: "w", Op: OpLE, Val: relation.IntVal(int64(rng.Intn(10)))})
		}
		sel := []ColRef{{"a", "v"}, {"b", "w"}}
		q := &Query{
			From:   []string{"a", "b"},
			Joins:  []Join{{"a", "id", "b", "aid"}},
			Preds:  preds,
			Select: sel,
		}
		got, err := NewExecutor(db).Execute(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := nestedLoopJoin(a, b, "id", "aid", preds, sel)
		// Compare as multisets via sorted canonical encodings.
		gotSet := map[string]int{}
		for _, r := range got.Rows {
			gotSet[encodeTuple(r)]++
		}
		wantSet := map[string]int{}
		for _, r := range want {
			wantSet[encodeTuple(r)]++
		}
		if !reflect.DeepEqual(gotSet, wantSet) {
			t.Fatalf("trial %d: hash join disagrees with nested loop:\n got %v\nwant %v", trial, gotSet, wantSet)
		}
	}
}

// TestAggregationMatchesManualCount cross-checks GROUP BY/HAVING against a
// manual count on random fact tables.
func TestAggregationMatchesManualCount(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 50; trial++ {
		db := relation.NewDatabase("rand")
		e := relation.New("e", relation.Col("id", relation.Int))
		nEnt := 1 + rng.Intn(20)
		for i := 0; i < nEnt; i++ {
			e.MustAppend(relation.IntVal(int64(i)))
		}
		f := relation.New("f", relation.Col("eid", relation.Int))
		counts := make(map[int64]int)
		nFact := rng.Intn(200)
		for i := 0; i < nFact; i++ {
			id := int64(rng.Intn(nEnt))
			counts[id]++
			f.MustAppend(relation.IntVal(id))
		}
		db.AddRelation(e)
		db.AddRelation(f)
		threshold := 1 + rng.Intn(10)
		q := &Query{
			From:          []string{"e", "f"},
			Joins:         []Join{{"e", "id", "f", "eid"}},
			Select:        []ColRef{{"e", "id"}},
			GroupBy:       []ColRef{{"e", "id"}},
			HavingCountGE: threshold,
		}
		res, err := NewExecutor(db).Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, c := range counts {
			if c >= threshold {
				want++
			}
		}
		if res.NumRows() != want {
			t.Fatalf("trial %d: HAVING count>=%d got %d groups want %d", trial, threshold, res.NumRows(), want)
		}
	}
}
