package engine

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"squid/internal/index"
	"squid/internal/relation"
	"squid/internal/trace"
)

// Executor runs logical queries against a database using hash joins with
// predicate pushdown. On indexed-size relations, point predicates
// (= and IN) are answered from a shared hash-index pool and range
// predicates (<, <=, >, >=, and their BETWEEN combinations) from shared
// sorted value→row indexes instead of column scans; the pool is
// concurrency-safe, so one executor can serve many goroutines.
type Executor struct {
	db  *relation.Database
	idx *index.IndexSet
}

// indexMinRows is the relation size below which a scan beats building or
// probing a hash index.
const indexMinRows = 64

// NewExecutor creates an executor over db with a private index pool.
func NewExecutor(db *relation.Database) *Executor {
	return NewExecutorWithIndexes(db, index.NewIndexSet())
}

// NewExecutorWithIndexes creates an executor sharing an existing index
// pool (the αDB hands its own pool over, so engine lookups reuse the
// offline indexes and stay consistent under incremental inserts).
func NewExecutorWithIndexes(db *relation.Database, idx *index.IndexSet) *Executor {
	return &Executor{db: db, idx: idx}
}

// Execute runs the query and returns its projected tuples. DISTINCT and
// intersection are applied after projection.
func (e *Executor) Execute(q *Query) (*Result, error) {
	//lint:ignore ctxpoll non-cancellable convenience wrapper; ExecuteCtx is the ctx-threading entry point
	return e.ExecuteCtx(context.Background(), q)
}

// ctxCheckRows is how many tuples a join or aggregation processes
// between cancellation checks: frequent enough that a pathological
// query aborts promptly, rare enough to stay off the profile.
const ctxCheckRows = 4096

// ExecuteCtx is Execute with cooperative cancellation: ctx.Err() is
// consulted between pipeline stages, between intersect branches, and
// every few thousand tuples inside joins and aggregation, so a
// canceled or deadline-expired context aborts even a pathological
// query (and releases whatever lock the caller executes under) instead
// of running to completion. The returned error wraps ctx's error;
// match it with errors.Is.
func (e *Executor) ExecuteCtx(ctx context.Context, q *Query) (*Result, error) {
	res, err := e.executeNoIntersect(ctx, q)
	if err != nil {
		return nil, err
	}
	sp := trace.SpanFrom(ctx)
	for i, sub := range q.Intersect {
		// Each intersect branch executes under its own stage span, so its
		// scan/join stages nest there instead of mixing with the parent's.
		isp := trace.Span{}
		if sp.Active() {
			isp = sp.Child(trace.PhaseStage, "intersect:"+strconv.Itoa(i))
		}
		subRes, err := e.ExecuteCtx(trace.NewContext(ctx, isp), sub)
		isp.End()
		if err != nil {
			return nil, err
		}
		res.intersect(subRes)
	}
	return res, nil
}

// executeNoIntersect evaluates the SPJA core of the query.
func (e *Executor) executeNoIntersect(ctx context.Context, q *Query) (*Result, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("engine: query has no FROM relations")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	relPos := make(map[string]int, len(q.From))
	rels := make([]*relation.Relation, len(q.From))
	for i, name := range q.From {
		r := e.db.Relation(name)
		if r == nil {
			return nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		if _, dup := relPos[name]; dup {
			return nil, fmt.Errorf("engine: relation %q appears twice in FROM (use Intersect for self-joins)", name)
		}
		relPos[name] = i
		rels[i] = r
	}

	// Group predicates by relation for pushdown.
	predsByRel := make(map[string][]Pred)
	for _, p := range q.Preds {
		if _, ok := relPos[p.Rel]; !ok {
			return nil, fmt.Errorf("engine: predicate on %q which is not in FROM", p.Rel)
		}
		if rels[relPos[p.Rel]].Column(p.Col) == nil {
			return nil, fmt.Errorf("engine: predicate on unknown column %s.%s", p.Rel, p.Col)
		}
		predsByRel[p.Rel] = append(predsByRel[p.Rel], p)
	}

	// Seed the intermediate result with the anchor relation's surviving rows.
	// Intermediate tuples are row indexes, one per joined relation
	// (position matches q.From order; -1 = not joined yet).
	sp := trace.SpanFrom(ctx)
	anchor := q.From[0]
	ss := trace.Span{}
	if sp.Active() {
		ss = sp.Child(trace.PhaseStage, "scan:"+anchor)
	}
	var tuples [][]int
	for _, row := range e.filterRows(rels[0], predsByRel[anchor]) {
		t := make([]int, len(q.From))
		for i := range t {
			t[i] = -1
		}
		t[0] = row
		tuples = append(tuples, t)
	}
	ss.Add(trace.CounterRows, int64(len(tuples)))
	ss.End()
	joined := map[string]bool{anchor: true}
	pendingJoins := append([]Join(nil), q.Joins...)

	// Repeatedly pick a join condition that connects a new relation to the
	// joined set and hash-join it in.
	for remaining := len(q.From) - 1; remaining > 0; remaining-- {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		progress := false
		for ji, j := range pendingJoins {
			var newRel, newCol, oldRel, oldCol string
			switch {
			case joined[j.LeftRel] && !joined[j.RightRel]:
				oldRel, oldCol, newRel, newCol = j.LeftRel, j.LeftCol, j.RightRel, j.RightCol
			case joined[j.RightRel] && !joined[j.LeftRel]:
				oldRel, oldCol, newRel, newCol = j.RightRel, j.RightCol, j.LeftRel, j.LeftCol
			default:
				continue
			}
			npos, ok := relPos[newRel]
			if !ok {
				return nil, fmt.Errorf("engine: join references %q which is not in FROM", newRel)
			}
			opos := relPos[oldRel]
			js := trace.Span{}
			if sp.Active() {
				// FROM relations are unique, so join labels are too.
				js = sp.Child(trace.PhaseStage, "join:"+newRel)
			}
			var err error
			tuples, err = e.hashJoin(ctx, tuples, opos, rels[opos], oldCol, npos, rels[npos], newCol, predsByRel[newRel])
			js.Add(trace.CounterRows, int64(len(tuples)))
			js.End()
			if err != nil {
				return nil, err
			}
			joined[newRel] = true
			pendingJoins = append(pendingJoins[:ji], pendingJoins[ji+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("engine: join graph disconnected (joined %v of %v)", joined, q.From)
		}
	}

	// Apply any join conditions between already-joined relations
	// (cycles in the join graph).
	if len(pendingJoins) > 0 {
		cs := sp.Child(trace.PhaseStage, "cycle-join")
		for _, j := range pendingJoins {
			lpos, ok := relPos[j.LeftRel]
			if !ok {
				cs.End()
				return nil, fmt.Errorf("engine: join references %q which is not in FROM", j.LeftRel)
			}
			rpos, ok := relPos[j.RightRel]
			if !ok {
				cs.End()
				return nil, fmt.Errorf("engine: join references %q which is not in FROM", j.RightRel)
			}
			lcol, rcol := rels[lpos].Column(j.LeftCol), rels[rpos].Column(j.RightCol)
			if lcol == nil || rcol == nil {
				cs.End()
				return nil, fmt.Errorf("engine: join on unknown column %s", j)
			}
			out := tuples[:0]
			for i, t := range tuples {
				if i%ctxCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						cs.End()
						return nil, fmt.Errorf("engine: %w", err)
					}
				}
				if lcol.Get(t[lpos]).Equal(rcol.Get(t[rpos])) {
					out = append(out, t)
				}
			}
			tuples = out
		}
		cs.Add(trace.CounterRows, int64(len(tuples)))
		cs.End()
	}

	if q.HasAggregation() {
		gs := sp.Child(trace.PhaseStage, "aggregate")
		var err error
		tuples, err = e.aggregate(ctx, q, relPos, rels, tuples)
		gs.Add(trace.CounterRows, int64(len(tuples)))
		gs.End()
		if err != nil {
			return nil, err
		}
	}

	// Project.
	ps := sp.Child(trace.PhaseStage, "project")
	res := &Result{}
	type proj struct {
		pos int
		col *relation.Column
	}
	projs := make([]proj, len(q.Select))
	for i, s := range q.Select {
		pos, ok := relPos[s.Rel]
		if !ok {
			ps.End()
			return nil, fmt.Errorf("engine: SELECT references %q which is not in FROM", s.Rel)
		}
		col := rels[pos].Column(s.Col)
		if col == nil {
			ps.End()
			return nil, fmt.Errorf("engine: SELECT on unknown column %s", s)
		}
		projs[i] = proj{pos, col}
		res.Cols = append(res.Cols, s.String())
	}
	res.Rows = make([][]relation.Value, 0, len(tuples))
	for _, t := range tuples {
		row := make([]relation.Value, len(projs))
		for i, p := range projs {
			row[i] = p.col.Get(t[p.pos])
		}
		res.Rows = append(res.Rows, row)
	}
	if q.Distinct {
		res.distinct()
	}
	ps.Add(trace.CounterRows, int64(len(res.Rows)))
	ps.End()
	return res, nil
}

// filterRows returns the rows of rel that satisfy all preds, sorted
// ascending. When a point predicate (= or IN) targets an indexable
// column of a large-enough relation, the candidate rows come from the
// hash-index pool in O(k) and only the remaining predicates are
// verified; otherwise the relation is scanned.
func (e *Executor) filterRows(rel *relation.Relation, preds []Pred) []int {
	cols := make([]*relation.Column, len(preds))
	for i, p := range preds {
		cols[i] = rel.Column(p.Col)
	}

	if rel.NumRows() >= indexMinRows {
		if cands, ok := e.indexCandidates(rel, preds, cols); ok {
			out := cands[:0:0]
			for _, row := range cands {
				keep := true
				for i, p := range preds {
					if !p.Matches(cols[i].Get(row)) {
						keep = false
						break
					}
				}
				if keep {
					out = append(out, row)
				}
			}
			return out
		}
	}

	var out []int
	for row := 0; row < rel.NumRows(); row++ {
		ok := true
		for i, p := range preds {
			if !p.Matches(cols[i].Get(row)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

// indexCandidates picks the most selective index-answerable predicate
// and returns its candidate rows (sorted ascending; a superset of the
// matching rows — string indexes are normalization-folded, so every
// candidate is re-verified by the caller). Point predicates (= and IN)
// are answered from hash indexes; range predicates (≥, ≤, and their
// BETWEEN combination on one column) from the sorted value→row index,
// whose O(log n) count lets selection happen before any row list is
// materialized. ok is false when no predicate is index-answerable.
func (e *Executor) indexCandidates(rel *relation.Relation, preds []Pred, cols []*relation.Column) (cands []int, ok bool) {
	bestCount := -1
	var bestRows []int
	var bestLazy func() []int
	consider := func(rows []int) {
		if bestCount == -1 || len(rows) < bestCount {
			bestCount, bestRows, bestLazy = len(rows), rows, nil
		}
	}
	considerLazy := func(count int, materialize func() []int) {
		if bestCount == -1 || count < bestCount {
			bestCount, bestRows, bestLazy = count, nil, materialize
		}
	}

	// Range predicates combine per column: age >= 50 AND age <= 90 is
	// one [50, 90] probe, the engine-level form of BETWEEN.
	type bounds struct{ lo, hi float64 }
	var ranges map[string]*bounds

	for i, p := range preds {
		col := cols[i]
		switch {
		case p.Op == OpEq && col.Type == relation.Int && p.Val.IsInt():
			consider(e.idx.IntHash(rel, p.Col).Rows(p.Val.Int()))
		case p.Op == OpEq && col.Type == relation.String && p.Val.IsString():
			consider(e.idx.StrHash(rel, p.Col).Rows(p.Val.Str()))
		case p.Op == OpIn && col.Type == relation.String:
			rows, valid := e.inCandidates(rel, p)
			if valid {
				consider(rows)
			}
		case (p.Op == OpGE || p.Op == OpLE || p.Op == OpGT || p.Op == OpLT) &&
			col.Type != relation.String && !p.Val.IsNull() && !p.Val.IsString():
			if ranges == nil {
				ranges = make(map[string]*bounds)
			}
			b := ranges[p.Col]
			if b == nil {
				b = &bounds{lo: math.Inf(-1), hi: math.Inf(1)}
				ranges[p.Col] = b
			}
			// The sorted index answers closed intervals; strict bounds
			// shift to the adjacent representable float, which is exact
			// for the float64 values the index stores.
			v := p.Val.Float()
			switch p.Op {
			case OpGT:
				v = math.Nextafter(v, math.Inf(1))
				fallthrough
			case OpGE:
				if v > b.lo {
					b.lo = v
				}
			case OpLT:
				v = math.Nextafter(v, math.Inf(-1))
				fallthrough
			case OpLE:
				if v < b.hi {
					b.hi = v
				}
			}
		}
	}
	for colName, b := range ranges {
		n := e.idx.Numeric(rel, colName)
		b := b
		considerLazy(n.CountRange(b.lo, b.hi), func() []int { return n.RowsInRange(b.lo, b.hi) })
	}
	if bestCount == -1 {
		return nil, false
	}
	if bestLazy != nil {
		return bestLazy(), true
	}
	return bestRows, true
}

// inCandidates unions the per-value posting lists of an IN predicate
// into one ascending row list.
func (e *Executor) inCandidates(rel *relation.Relation, p Pred) ([]int, bool) {
	h := e.idx.StrHash(rel, p.Col)
	var lists [][]int
	for _, v := range p.Vals {
		if !v.IsString() {
			return nil, false
		}
		if rows := h.Rows(v.Str()); len(rows) > 0 {
			lists = append(lists, rows)
		}
	}
	switch len(lists) {
	case 0:
		return nil, true
	case 1:
		return lists[0], true
	}
	// k-way union by repeated two-way merges (IN lists are short).
	out := lists[0]
	for _, l := range lists[1:] {
		out = index.UnionSorted(out, l)
	}
	return out, true
}

// hashJoin extends each intermediate tuple with matching rows of the new
// relation, applying the new relation's pushed-down predicates while
// building the hash table. It checks cancellation every ctxCheckRows
// probe tuples, so a blown-up join aborts instead of materializing.
func (e *Executor) hashJoin(ctx context.Context, tuples [][]int, oldPos int, oldRel *relation.Relation, oldCol string, newPos int, newRel *relation.Relation, newCol string, newPreds []Pred) ([][]int, error) {
	build := make(map[string][]int)
	nc := newRel.Column(newCol)
	for _, row := range e.filterRows(newRel, newPreds) {
		v := nc.Get(row)
		if v.IsNull() {
			continue
		}
		k := v.String()
		build[k] = append(build[k], row)
	}
	oc := oldRel.Column(oldCol)
	var out [][]int
	for i, t := range tuples {
		if i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("engine: %w", err)
			}
		}
		v := oc.Get(t[oldPos])
		if v.IsNull() {
			continue
		}
		for _, nrow := range build[v.String()] {
			nt := make([]int, len(t))
			copy(nt, t)
			nt[newPos] = nrow
			out = append(out, nt)
		}
	}
	return out, nil
}

// aggregate groups the intermediate tuples by the GroupBy columns, applies
// HAVING count(*) ≥ N, and keeps one representative tuple per group.
func (e *Executor) aggregate(ctx context.Context, q *Query, relPos map[string]int, rels []*relation.Relation, tuples [][]int) ([][]int, error) {
	type keyCol struct {
		pos int
		col *relation.Column
	}
	keys := make([]keyCol, len(q.GroupBy))
	for i, g := range q.GroupBy {
		pos, ok := relPos[g.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: GROUP BY references %q which is not in FROM", g.Rel)
		}
		col := rels[pos].Column(g.Col)
		if col == nil {
			return nil, fmt.Errorf("engine: GROUP BY on unknown column %s", g)
		}
		keys[i] = keyCol{pos, col}
	}
	type group struct {
		rep   []int
		count int
	}
	groups := make(map[string]*group)
	var order []string
	for i, t := range tuples {
		if i%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("engine: %w", err)
			}
		}
		vals := make([]relation.Value, len(keys))
		for i, k := range keys {
			vals[i] = k.col.Get(t[k.pos])
		}
		gk := encodeTuple(vals)
		g := groups[gk]
		if g == nil {
			g = &group{rep: t}
			groups[gk] = g
			order = append(order, gk)
		}
		g.count++
	}
	var out [][]int
	for _, gk := range order {
		g := groups[gk]
		if g.count >= q.HavingCountGE {
			out = append(out, g.rep)
		}
	}
	return out, nil
}

// Count executes the query and returns only the result cardinality.
func (e *Executor) Count(q *Query) (int, error) {
	res, err := e.Execute(q)
	if err != nil {
		return 0, err
	}
	return res.NumRows(), nil
}
