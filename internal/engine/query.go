// Package engine implements the relational execution engine: logical
// select-project-join queries with optional group-by/count aggregation,
// HAVING, DISTINCT, and intersection (the SPJAI class of the paper,
// footnote 6: key-foreign-key joins and conjunctive predicates of the form
// attribute OP value with OP ∈ {=, ≥, ≤}). It executes both the
// ground-truth benchmark queries and the queries SQuID abduces.
package engine

import (
	"fmt"
	"strings"

	"squid/internal/relation"
)

// Op is a predicate comparison operator.
type Op int

const (
	// OpEq is attribute = value.
	OpEq Op = iota
	// OpGE is attribute ≥ value.
	OpGE
	// OpLE is attribute ≤ value.
	OpLE
	// OpIn is attribute ∈ values (the paper's optional disjunction
	// support for categorical attributes, §3.1 footnote 7).
	OpIn
	// OpGT is attribute > value (strict variant beyond the paper's
	// {=, ≥, ≤} class, for external workloads).
	OpGT
	// OpLT is attribute < value.
	OpLT
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpGE:
		return ">="
	case OpLE:
		return "<="
	case OpIn:
		return "IN"
	case OpGT:
		return ">"
	case OpLT:
		return "<"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ColRef names a column of a relation participating in a query.
type ColRef struct {
	Rel string
	Col string
}

// String renders rel.col.
func (c ColRef) String() string { return c.Rel + "." + c.Col }

// Pred is a conjunctive selection predicate.
type Pred struct {
	Rel  string
	Col  string
	Op   Op
	Val  relation.Value   // operand for OpEq/OpGE/OpLE
	Vals []relation.Value // operands for OpIn
}

// String renders the predicate in SQL syntax.
func (p Pred) String() string {
	if p.Op == OpIn {
		parts := make([]string, len(p.Vals))
		for i, v := range p.Vals {
			parts[i] = v.SQLLiteral()
		}
		return fmt.Sprintf("%s.%s IN (%s)", p.Rel, p.Col, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s.%s %s %s", p.Rel, p.Col, p.Op, p.Val.SQLLiteral())
}

// Matches evaluates the predicate against a value (NULL never matches).
func (p Pred) Matches(v relation.Value) bool {
	if v.IsNull() {
		return false
	}
	switch p.Op {
	case OpEq:
		return v.Equal(p.Val)
	case OpGE:
		return !v.Less(p.Val)
	case OpLE:
		return !p.Val.Less(v)
	case OpIn:
		for _, cand := range p.Vals {
			if v.Equal(cand) {
				return true
			}
		}
		return false
	case OpGT:
		return p.Val.Less(v)
	case OpLT:
		return v.Less(p.Val)
	}
	return false
}

// Join is an equi-join condition between two relations (always a
// key-foreign-key edge in SQuID's query class).
type Join struct {
	LeftRel  string
	LeftCol  string
	RightRel string
	RightCol string
}

// String renders the join condition in SQL syntax.
func (j Join) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftRel, j.LeftCol, j.RightRel, j.RightCol)
}

// Query is a logical SPJAI query.
type Query struct {
	// From lists the participating relations; the first is the anchor
	// (usually the entity relation the examples come from).
	From []string
	// Joins are the equi-join conditions connecting From relations.
	Joins []Join
	// Preds are conjunctive selection predicates.
	Preds []Pred
	// Select is the projection list.
	Select []ColRef
	// Distinct deduplicates the projected tuples.
	Distinct bool
	// GroupBy, when non-empty, groups joined rows by these columns;
	// the projection is taken from an arbitrary representative row of
	// each group (valid because SQuID only projects attributes
	// functionally determined by the group keys, e.g. GROUP BY
	// person.id ... SELECT person.name).
	GroupBy []ColRef
	// HavingCountGE keeps only groups with at least this many rows
	// (0 means no HAVING filter).
	HavingCountGE int
	// Intersect, when non-empty, intersects this query's projected
	// tuples with each listed query's tuples (the I in SPJAI).
	Intersect []*Query
}

// HasAggregation reports whether the query uses group-by aggregation.
func (q *Query) HasAggregation() bool { return len(q.GroupBy) > 0 }

// NumJoins returns the number of join predicates, counting intersected
// branches too (the J column of Figs 19/20).
func (q *Query) NumJoins() int {
	n := len(q.Joins)
	for _, sub := range q.Intersect {
		n += sub.NumJoins()
	}
	return n
}

// NumPreds returns the number of selection predicates, counting
// intersected branches (the S column of Figs 19/20).
func (q *Query) NumPreds() int {
	n := len(q.Preds)
	for _, sub := range q.Intersect {
		n += sub.NumPreds()
	}
	return n
}

// TotalPredicates counts join plus selection predicates, the metric
// reported in Figs 14/15 ("number of predicates").
func (q *Query) TotalPredicates() int { return q.NumJoins() + q.NumPreds() }

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{
		From:          append([]string(nil), q.From...),
		Joins:         append([]Join(nil), q.Joins...),
		Preds:         append([]Pred(nil), q.Preds...),
		Select:        append([]ColRef(nil), q.Select...),
		Distinct:      q.Distinct,
		GroupBy:       append([]ColRef(nil), q.GroupBy...),
		HavingCountGE: q.HavingCountGE,
	}
	for _, sub := range q.Intersect {
		c.Intersect = append(c.Intersect, sub.Clone())
	}
	return c
}
