package datagen

import (
	"fmt"
	"math/rand"

	"squid/internal/relation"
)

// DBLPConfig scales the synthetic DBLP-like database.
type DBLPConfig struct {
	Seed      int64
	NumAuthor int
	NumPubs   int
}

// DefaultDBLPConfig returns the scale used by the experiment harness.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{Seed: 1933, NumAuthor: 3000, NumPubs: 6000}
}

// DBLP bundles the generated database with planted ground truth.
type DBLP struct {
	DB  *relation.Database
	Cfg DBLPConfig

	// Prolific are the planted heavy database-venue publishers (case
	// study c).
	Prolific []int64
	// Trio are three authors with many joint publications (DQ4).
	Trio      []int64
	TrioNames []string
	TrioPubs  []int64
	// DualAffil are authors collaborating with both planted
	// affiliations (DQ1).
	DualAffil      []int64
	AffilA, AffilB string
	// PubCount is per-author publication count (popularity).
	PubCount map[int64]int
}

var dblpVenues = []string{
	"SIGMOD", "VLDB", "ICDE", "KDD", "SIGIR", "WWW", "CIKM", "EDBT",
	"PODS", "ICML", "NIPS", "AAAI", "ACL", "SOSP", "OSDI", "NSDI",
}

var dblpAreas = []string{
	"Databases", "Data Mining", "Information Retrieval", "Machine Learning",
	"Systems", "Networks", "NLP", "Theory",
}

var dblpAffiliations = []string{
	"U Washington", "Microsoft Research Redmond", "UMass Amherst", "MIT",
	"Stanford", "Berkeley", "CMU", "Wisconsin", "Google Research",
	"IBM Research", "ETH Zurich", "EPFL",
}

var dblpKeywords = []string{
	"query-processing", "indexing", "transactions", "learning",
	"ranking", "graphs", "streams", "privacy", "provenance", "crowdsourcing",
}

var dblpPubTypes = []string{"conference", "journal", "workshop", "demo"}

var dblpAwardsList = []string{"Best Paper", "Test of Time", "Dissertation Award"}

// GenerateDBLP builds the 14-relation DBLP-like database.
func GenerateDBLP(cfg DBLPConfig) *DBLP {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &DBLP{Cfg: cfg, PubCount: make(map[int64]int)}
	db := relation.NewDatabase("dblp")
	out.DB = db

	addDim := func(name string, values []string) {
		r := relation.New(name,
			relation.Col("id", relation.Int),
			relation.Col("name", relation.String),
		).SetPrimaryKey("id")
		for i, v := range values {
			r.MustAppend(relation.IntVal(int64(i)), relation.StringVal(v))
		}
		db.AddRelation(r)
		db.MarkProperty(name)
	}
	addDim("venue", dblpVenues)
	addDim("area", dblpAreas)
	addDim("affiliation", dblpAffiliations)
	addDim("country", imdbCountries)
	addDim("keyword", dblpKeywords)
	addDim("pubtype", dblpPubTypes)
	addDim("award", dblpAwardsList)

	// --- author -------------------------------------------------------
	author := relation.New("author",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("affiliation_id", relation.Int),
		relation.Col("country_id", relation.Int),
	).SetPrimaryKey("id").
		AddForeignKey("affiliation_id", "affiliation", "id").
		AddForeignKey("country_id", "country", "id")
	affW := zipfWeights(len(dblpAffiliations), 0.8)
	countryW := zipfWeights(len(imdbCountries), 1.2)
	for i := 0; i < cfg.NumAuthor; i++ {
		author.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal("Dr "+personName(i)),
			relation.IntVal(int64(weightedPick(rng, affW))),
			relation.IntVal(int64(weightedPick(rng, countryW))),
		)
	}
	db.AddRelation(author)
	db.MarkEntity("author")

	// --- publication ---------------------------------------------------
	publication := relation.New("publication",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
		relation.Col("year", relation.Int),
		relation.Col("venue_id", relation.Int),
		relation.Col("pubtype_id", relation.Int),
	).SetPrimaryKey("id").
		AddForeignKey("venue_id", "venue", "id").
		AddForeignKey("pubtype_id", "pubtype", "id")
	venueW := zipfWeights(len(dblpVenues), 0.7)
	pubVenue := make([]int, cfg.NumPubs)
	for i := 0; i < cfg.NumPubs; i++ {
		v := weightedPick(rng, venueW)
		pubVenue[i] = v
		publication.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(paperTitle(i)),
			relation.IntVal(int64(2000+rng.Intn(16))), // 2000-2015 like the paper
			relation.IntVal(int64(v)),
			relation.IntVal(int64(weightedPick(rng, zipfWeights(len(dblpPubTypes), 1.0)))),
		)
	}
	db.AddRelation(publication)
	db.MarkEntity("publication")

	// --- pubtoarea, pubtokeyword ----------------------------------------
	pta := relation.New("pubtoarea",
		relation.Col("pub_id", relation.Int),
		relation.Col("area_id", relation.Int),
	).AddForeignKey("pub_id", "publication", "id").AddForeignKey("area_id", "area", "id")
	areaW := zipfWeights(len(dblpAreas), 0.8)
	for i := 0; i < cfg.NumPubs; i++ {
		pta.MustAppend(relation.IntVal(int64(i)), relation.IntVal(int64(weightedPick(rng, areaW))))
	}
	db.AddRelation(pta)

	ptk := relation.New("pubtokeyword",
		relation.Col("pub_id", relation.Int),
		relation.Col("keyword_id", relation.Int),
	).AddForeignKey("pub_id", "publication", "id").AddForeignKey("keyword_id", "keyword", "id")
	kwW := zipfWeights(len(dblpKeywords), 0.8)
	for i := 0; i < cfg.NumPubs; i++ {
		for _, k := range sampleDistinct(rng, len(dblpKeywords), 1+rng.Intn(3)) {
			_ = k
		}
		n := 1 + rng.Intn(3)
		ks := map[int]struct{}{}
		for len(ks) < n {
			ks[weightedPick(rng, kwW)] = struct{}{}
		}
		for k := range ks {
			ptk.MustAppend(relation.IntVal(int64(i)), relation.IntVal(int64(k)))
		}
	}
	db.AddRelation(ptk)

	// --- authortopub -----------------------------------------------------
	atp := relation.New("authortopub",
		relation.Col("author_id", relation.Int),
		relation.Col("pub_id", relation.Int),
	).AddForeignKey("author_id", "author", "id").AddForeignKey("pub_id", "publication", "id")
	authorW := zipfWeights(cfg.NumAuthor, 0.8)
	pubAuthors := make([][]int64, cfg.NumPubs)
	writePub := func(a int64, p int) {
		atp.MustAppend(relation.IntVal(a), relation.IntVal(int64(p)))
		pubAuthors[p] = append(pubAuthors[p], a)
		out.PubCount[a]++
	}
	for p := 0; p < cfg.NumPubs; p++ {
		n := 1 + rng.Intn(4)
		seen := map[int]struct{}{}
		for len(seen) < n {
			a := weightedPick(rng, authorW)
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			writePub(int64(a), p)
		}
	}
	// Planted: prolific DB researchers (authors 5..34) with many
	// SIGMOD/VLDB papers.
	sigmod, vldb := indexOf(dblpVenues, "SIGMOD"), indexOf(dblpVenues, "VLDB")
	var dbPubs []int
	for p, v := range pubVenue {
		if v == sigmod || v == vldb {
			dbPubs = append(dbPubs, p)
		}
	}
	for i := 0; i < 30; i++ {
		a := int64(5 + i)
		out.Prolific = append(out.Prolific, a)
		for _, pi := range sampleDistinct(rng, len(dbPubs), 24+rng.Intn(10)) {
			writePub(a, dbPubs[pi])
		}
	}
	// Planted: the trio with 15 joint publications (DQ4): authors
	// 200, 201, 202 on publications 100..114.
	out.Trio = []int64{200, 201, 202}
	nameCol := author.Column("name")
	for _, a := range out.Trio {
		out.TrioNames = append(out.TrioNames, nameCol.Str(int(a)))
	}
	for p := 100; p < 115; p++ {
		out.TrioPubs = append(out.TrioPubs, int64(p))
		for _, a := range out.Trio {
			writePub(a, p)
		}
	}
	db.AddRelation(atp)

	// --- collaboration (precomputed co-author affiliations, DQ1) -------
	collab := relation.New("collaboration",
		relation.Col("author_id", relation.Int),
		relation.Col("affiliation_id", relation.Int),
	).AddForeignKey("author_id", "author", "id").AddForeignKey("affiliation_id", "affiliation", "id")
	affCol := author.Column("affiliation_id")
	seenCollab := map[string]bool{}
	addCollab := func(a int64, aff int64) {
		key := fmt.Sprintf("%d-%d", a, aff)
		if seenCollab[key] {
			return
		}
		seenCollab[key] = true
		collab.MustAppend(relation.IntVal(a), relation.IntVal(aff))
	}
	for p := 0; p < cfg.NumPubs; p++ {
		as := pubAuthors[p]
		for _, a := range as {
			for _, b := range as {
				if a == b {
					continue
				}
				addCollab(a, affCol.Int64(int(b)))
			}
		}
	}
	// Planted dual-affiliation collaborators (DQ1): authors 300..319
	// collaborate with both U Washington and MSR.
	affA, affB := indexOf(dblpAffiliations, "U Washington"), indexOf(dblpAffiliations, "Microsoft Research Redmond")
	out.AffilA, out.AffilB = dblpAffiliations[affA], dblpAffiliations[affB]
	for i := 0; i < 20; i++ {
		a := int64(300 + i)
		out.DualAffil = append(out.DualAffil, a)
		addCollab(a, int64(affA))
		addCollab(a, int64(affB))
	}
	db.AddRelation(collab)

	// --- pubtocountry ------------------------------------------------------
	// The countries of a publication's authors, materialized as a fact
	// table (real bibliographic datasets carry affiliation countries per
	// paper). This makes "publications between USA and Canada" (DQ5) an
	// existence intent over a basic fact-dimension property rather than a
	// weak (θ=1) derived association that τa would prune.
	ptc := relation.New("pubtocountry",
		relation.Col("pub_id", relation.Int),
		relation.Col("country_id", relation.Int),
	).AddForeignKey("pub_id", "publication", "id").AddForeignKey("country_id", "country", "id")
	ctyCol := author.Column("country_id")
	seenPC := map[string]bool{}
	for p := 0; p < cfg.NumPubs; p++ {
		for _, a := range pubAuthors[p] {
			cty := ctyCol.Int64(int(a))
			key := fmt.Sprintf("%d-%d", p, cty)
			if seenPC[key] {
				continue
			}
			seenPC[key] = true
			ptc.MustAppend(relation.IntVal(int64(p)), relation.IntVal(cty))
		}
	}
	db.AddRelation(ptc)

	return out
}
