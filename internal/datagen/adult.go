package datagen

import (
	"fmt"
	"math/rand"

	"squid/internal/relation"
)

// AdultConfig scales the synthetic census table.
type AdultConfig struct {
	Seed    int64
	NumRows int
	// ScaleFactor replicates the generated rows N times with fresh ids
	// and names (the Fig 16(b) scalability knob).
	ScaleFactor int
}

// DefaultAdultConfig returns the scale used by the experiment harness.
func DefaultAdultConfig() AdultConfig {
	return AdultConfig{Seed: 4819, NumRows: 4000, ScaleFactor: 1}
}

// Adult bundles the generated single-relation census database.
type Adult struct {
	DB  *relation.Database
	Cfg AdultConfig
}

// Attribute domains modeled on the UCI Adult census schema.
var (
	adultWorkclasses = []string{
		"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
		"Local-gov", "State-gov", "Without-pay",
	}
	adultEducations = []string{
		"Bachelors", "HS-grad", "11th", "Masters", "9th", "Some-college",
		"Assoc-acdm", "Assoc-voc", "Doctorate", "10th", "7th-8th",
	}
	adultMarital = []string{
		"Married-civ-spouse", "Divorced", "Never-married", "Separated",
		"Widowed", "Married-spouse-absent",
	}
	adultOccupations = []string{
		"Tech-support", "Craft-repair", "Other-service", "Sales",
		"Exec-managerial", "Prof-specialty", "Handlers-cleaners",
		"Machine-op-inspct", "Adm-clerical", "Farming-fishing",
		"Transport-moving", "Protective-serv",
	}
	adultRelationships = []string{
		"Wife", "Own-child", "Husband", "Not-in-family", "Other-relative",
		"Unmarried",
	}
	adultRaces = []string{
		"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black",
	}
	adultSexes     = []string{"Male", "Female"}
	adultCountries = []string{
		"United-States", "Mexico", "Philippines", "Germany", "Canada",
		"India", "England", "Cuba", "China", "Italy",
	}
	adultIncomes = []string{"<=50K", ">50K"}
)

// GenerateAdult builds the single-relation census database.
func GenerateAdult(cfg AdultConfig) *Adult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.ScaleFactor < 1 {
		cfg.ScaleFactor = 1
	}
	db := relation.NewDatabase(fmt.Sprintf("adult_x%d", cfg.ScaleFactor))
	r := relation.New("adult",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("age", relation.Int),
		relation.Col("workclass", relation.String),
		relation.Col("fnlwgt", relation.Int),
		relation.Col("education", relation.String),
		relation.Col("maritalstatus", relation.String),
		relation.Col("occupation", relation.String),
		relation.Col("relationship", relation.String),
		relation.Col("race", relation.String),
		relation.Col("sex", relation.String),
		relation.Col("capitalgain", relation.Int),
		relation.Col("capitalloss", relation.Int),
		relation.Col("hoursperweek", relation.Int),
		relation.Col("nativecountry", relation.String),
		relation.Col("income", relation.String),
	).SetPrimaryKey("id")

	wcW := zipfWeights(len(adultWorkclasses), 1.4)
	eduW := zipfWeights(len(adultEducations), 0.8)
	marW := zipfWeights(len(adultMarital), 0.9)
	occW := zipfWeights(len(adultOccupations), 0.5)
	relW := zipfWeights(len(adultRelationships), 0.8)
	raceW := zipfWeights(len(adultRaces), 2.0)
	ctyW := zipfWeights(len(adultCountries), 2.5)

	id := int64(0)
	for rep := 0; rep < cfg.ScaleFactor; rep++ {
		// Each replica reuses the same seeded value stream so scaled
		// datasets are supersets in distribution, like the paper's
		// replication of the Adult dataset.
		repRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)))
		_ = rng
		for i := 0; i < cfg.NumRows; i++ {
			capGain := 0
			if repRng.Intn(100) < 9 {
				capGain = 1000 + repRng.Intn(12000)
			}
			capLoss := 0
			if repRng.Intn(100) < 5 {
				capLoss = 1400 + repRng.Intn(1200)
			}
			income := adultIncomes[0]
			if repRng.Intn(100) < 24 {
				income = adultIncomes[1]
			}
			r.MustAppend(
				relation.IntVal(id),
				relation.StringVal(fmt.Sprintf("%s #%d", personName(i), id)),
				relation.IntVal(int64(17+repRng.Intn(60))),
				relation.StringVal(adultWorkclasses[weightedPick(repRng, wcW)]),
				relation.IntVal(int64(12000+repRng.Intn(900000))),
				relation.StringVal(adultEducations[weightedPick(repRng, eduW)]),
				relation.StringVal(adultMarital[weightedPick(repRng, marW)]),
				relation.StringVal(adultOccupations[weightedPick(repRng, occW)]),
				relation.StringVal(adultRelationships[weightedPick(repRng, relW)]),
				relation.StringVal(adultRaces[weightedPick(repRng, raceW)]),
				relation.StringVal(adultSexes[repRng.Intn(2)]),
				relation.IntVal(int64(capGain)),
				relation.IntVal(int64(capLoss)),
				relation.IntVal(int64(20+repRng.Intn(60))),
				relation.StringVal(adultCountries[weightedPick(repRng, ctyW)]),
				relation.StringVal(income),
			)
			id++
		}
	}
	db.AddRelation(r)
	db.MarkEntity("adult")
	return &Adult{DB: db, Cfg: cfg}
}
