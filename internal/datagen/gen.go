package datagen

import (
	"fmt"
	"math/rand"

	"squid/internal/relation"
)

// GenConfig scales the schema-aware synthetic workload generator behind
// the million-row scale track. Unlike the IMDb/DBLP generators — which
// reproduce a fixed paper schema — this one is parameterized end to
// end: entity cardinalities, fact-table size, Zipf skew, and the
// per-column distinct-value budgets of every dimension are all
// configurable, and generation is fully deterministic given Seed.
type GenConfig struct {
	Seed int64

	// Entity cardinalities.
	NumCustomers int
	NumProducts  int
	// NumFacts is the size of the purchase fact table before planted
	// structure (the dominant term at scale).
	NumFacts int

	// Skew is the Zipf exponent shaping product popularity and customer
	// activity (higher = heavier head).
	Skew float64

	// Per-column distinct-value budgets for the dimension relations.
	NumRegions  int
	NumSegments int
	NumBrands   int
	NumTags     int
	NumChannels int

	// TagsPerProduct is the mean size of a product's tag set.
	TagsPerProduct int

	// Planted entity classes: NumGroups loyalist groups of GroupSize
	// customers each, scattered across the id space. Group g is loyal to
	// brand g (whose products also carry the reserved tag g), so each
	// group is discoverable through the customer↔brand and customer↔tag
	// derived associations at paper-like selectivity — GroupSize members
	// out of NumCustomers.
	NumGroups int
	GroupSize int
}

// gen100kConfig is the reduced scale the CI smoke runs: ~100k total
// rows.
func gen100kConfig() GenConfig {
	return GenConfig{
		Seed:         20190625,
		NumCustomers: 9000,
		NumProducts:  3000,
		NumFacts:     80000,
		Skew:         1.05,
		NumRegions:   12,
		NumSegments:  8,
		NumBrands:    40,
		NumTags:      24,
		NumChannels:  16,

		TagsPerProduct: 2,
		NumGroups:      3,
		GroupSize:      48,
	}
}

// gen1mConfig is the million-row scale track: ~1M total rows, fact
// dominated like the paper's IMDb workload (castinfo ≫ everything).
func gen1mConfig() GenConfig {
	return GenConfig{
		Seed:         20190625,
		NumCustomers: 60000,
		NumProducts:  20000,
		NumFacts:     860000,
		Skew:         1.05,
		NumRegions:   20,
		NumSegments:  10,
		NumBrands:    120,
		NumTags:      40,
		NumChannels:  24,

		TagsPerProduct: 2,
		NumGroups:      3,
		GroupSize:      96,
	}
}

// GenScaleConfig maps a bench scale name ("gen100k", "gen1m") to its
// config; ok is false for unknown names.
func GenScaleConfig(scale string) (GenConfig, bool) {
	switch scale {
	case "gen100k":
		return gen100kConfig(), true
	case "gen1m":
		return gen1mConfig(), true
	}
	return GenConfig{}, false
}

// normalizeGen clamps a config to the floors generation needs. Both
// GenerateGen and GenExampleSets normalize, so the example sets derived
// from a raw config always name the customers the generated (clamped)
// database planted — the fixture contract.
func normalizeGen(cfg GenConfig) GenConfig {
	if cfg.NumCustomers < 400 {
		cfg.NumCustomers = 400
	}
	if cfg.NumProducts < 100 {
		cfg.NumProducts = 100
	}
	if cfg.NumFacts < cfg.NumCustomers {
		cfg.NumFacts = cfg.NumCustomers
	}
	if cfg.Skew <= 0 {
		cfg.Skew = 1.0
	}
	clampDim := func(n *int, floor int) {
		if *n < floor {
			*n = floor
		}
	}
	if cfg.NumGroups < 1 {
		cfg.NumGroups = 1
	}
	clampDim(&cfg.NumRegions, 2)
	clampDim(&cfg.NumSegments, 2)
	// The last NumGroups channels are reserved for the planted groups.
	clampDim(&cfg.NumChannels, len(genChannelBase)+cfg.NumGroups)
	if cfg.TagsPerProduct < 1 {
		cfg.TagsPerProduct = 1
	}
	if cfg.GroupSize < 8 {
		cfg.GroupSize = 8
	}
	// Every group needs its own brand and reserved tag, plus at least two
	// unplanted values of each.
	clampDim(&cfg.NumBrands, cfg.NumGroups+2)
	clampDim(&cfg.NumTags, cfg.NumGroups+2)
	// The scattered loyalists must fit the id space with stride ≥ 1.
	if maxLoyal := (cfg.NumCustomers - 20) / 2; cfg.NumGroups*cfg.GroupSize > maxLoyal {
		cfg.GroupSize = maxLoyal / cfg.NumGroups
	}
	return cfg
}

// loyalistStride returns the id-space stride between consecutive
// planted loyalists (groups interleaved), scattering the classes across
// the whole customer table instead of leaving them a contiguous block.
func loyalistStride(cfg GenConfig) int {
	s := (cfg.NumCustomers - 20) / (cfg.NumGroups * cfg.GroupSize)
	if s < 1 {
		s = 1
	}
	return s
}

// loyalistID returns the customer id of member j of planted group g —
// a pure function of the config, so example sets derived from the
// config alone name the same customers the generator planted.
func loyalistID(cfg GenConfig, g, j int) int {
	return 10 + (j*cfg.NumGroups+g)*loyalistStride(cfg)
}

// loyalistAge returns the planted age of member j of any group: a
// (31 mod 63)-walk over the full 18..80 domain, so every example-set
// prefix of 3+ members spans nearly the whole age range — a filter a
// paper-faithful abduction rejects for excessive domain coverage,
// keeping the discovered queries anchored on the planted associations.
func loyalistAge(j int) int {
	return 18 + (j*31)%63
}

// Gen bundles the generated retail-shaped database with its planted
// ground truth.
type Gen struct {
	DB  *relation.Database
	Cfg GenConfig

	// Groups are the planted loyalist classes: Groups[g] lists the
	// customer ids loyal to brand g. Loyalists is Groups[0], kept as the
	// canonical class for tests and docs.
	Groups     [][]int64
	Loyalists  []int64
	LoyalBrand string
}

var genRegionBase = []string{
	"North", "South", "East", "West", "Central", "Pacific", "Mountain",
	"Atlantic", "Gulf", "Lakes", "Plains", "Highlands",
}

var genSegmentBase = []string{
	"Consumer", "Corporate", "SmallBiz", "Enterprise", "Education",
	"Government", "Healthcare", "Nonprofit",
}

var genChannelBase = []string{"online", "store", "mobile", "partner"}

// dimValues returns n distinct labels: the base list first, then
// generated overflow — the per-column distinct-value budget knob.
func dimValues(base []string, prefix string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			out = append(out, base[i])
		} else {
			out = append(out, fmt.Sprintf("%s %d", prefix, i))
		}
	}
	return out
}

// productName produces a unique product name for index i.
func productName(i int) string {
	a := titleAdjectives[i%len(titleAdjectives)]
	n := titleNouns[(i/len(titleAdjectives))%len(titleNouns)]
	return fmt.Sprintf("%s %s %d", a, n, i/(len(titleAdjectives)*len(titleNouns)))
}

// brandName produces a unique brand label for index i; brand 0 is the
// first planted loyalty brand.
func brandName(i int) string {
	if i == 0 {
		return "Aurora Works"
	}
	n := titleNouns[i%len(titleNouns)]
	return fmt.Sprintf("%s Labs %d", n, i/len(titleNouns))
}

// tagName produces a unique tag label for index i.
func tagName(i int) string {
	k := imdbKeywords[i%len(imdbKeywords)]
	if i < len(imdbKeywords) {
		return k
	}
	return fmt.Sprintf("%s-%d", k, i/len(imdbKeywords))
}

// renormalize scales weights to sum to 1 (weightedPick's contract);
// all-zero weights are left alone.
func renormalize(w []float64) {
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return
	}
	for i := range w {
		w[i] /= total
	}
}

// GenerateGen builds the retail-shaped database: configurable
// dimensions (region, segment, brand, tag, channel), two entity
// relations (customer, product), a product↔tag bridge, and the
// purchase fact table joining customers to products with Zipf-skewed
// popularity on both sides. All FKs reference rows that exist.
//
// The planted structure is the paper-like part: NumGroups loyalist
// groups, scattered across the customer table, each buying 8-12
// distinct products of their group's brand. Planted-brand products are
// suppressed to 2% of their natural weight in the random purchase
// stream and carry a reserved tag no other product gets, so the
// customer↔brand and customer↔tag association strengths separate the
// group cleanly from the background — a selective entity class an
// example-driven discovery can recover, like the paper's "actors in
// ≥3 comedies".
func GenerateGen(cfg GenConfig) *Gen {
	cfg = normalizeGen(cfg)

	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Gen{Cfg: cfg, LoyalBrand: brandName(0)}
	db := relation.NewDatabase("gen")
	out.DB = db

	// --- Dimension (property) relations -----------------------------
	addDim := func(name string, values []string) {
		r := relation.New(name,
			relation.Col("id", relation.Int),
			relation.Col("name", relation.String),
		).SetPrimaryKey("id")
		for i, v := range values {
			r.MustAppend(relation.IntVal(int64(i)), relation.StringVal(v))
		}
		db.AddRelation(r)
		db.MarkProperty(name)
	}
	brands := make([]string, cfg.NumBrands)
	for i := range brands {
		brands[i] = brandName(i)
	}
	tags := make([]string, cfg.NumTags)
	for i := range tags {
		tags[i] = tagName(i)
	}
	addDim("region", dimValues(genRegionBase, "Region", cfg.NumRegions))
	addDim("segment", dimValues(genSegmentBase, "Segment", cfg.NumSegments))
	addDim("brand", brands)
	addDim("tag", tags)
	addDim("channel", dimValues(genChannelBase, "Channel", cfg.NumChannels))

	// Planted loyalist ids and their group/member coordinates.
	loyalOrd := make(map[int]int) // customer id -> member index j
	out.Groups = make([][]int64, cfg.NumGroups)
	for g := 0; g < cfg.NumGroups; g++ {
		for j := 0; j < cfg.GroupSize; j++ {
			id := loyalistID(cfg, g, j)
			loyalOrd[id] = j
			out.Groups[g] = append(out.Groups[g], int64(id))
		}
	}
	out.Loyalists = out.Groups[0]

	// --- customer ----------------------------------------------------
	customer := relation.New("customer",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("age", relation.Int),
		relation.Col("region_id", relation.Int),
		relation.Col("segment_id", relation.Int),
	).SetPrimaryKey("id").
		AddForeignKey("region_id", "region", "id").
		AddForeignKey("segment_id", "segment", "id")
	regionW := zipfWeights(cfg.NumRegions, cfg.Skew)
	segmentW := zipfWeights(cfg.NumSegments, 0.8)
	for i := 0; i < cfg.NumCustomers; i++ {
		age := 18 + rng.Intn(63)
		if j, planted := loyalOrd[i]; planted {
			age = loyalistAge(j)
		}
		customer.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(personName(i)),
			relation.IntVal(int64(age)),
			relation.IntVal(int64(weightedPick(rng, regionW))),
			relation.IntVal(int64(weightedPick(rng, segmentW))),
		)
	}
	db.AddRelation(customer)
	db.MarkEntity("customer")

	// --- product -----------------------------------------------------
	product := relation.New("product",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("price", relation.Float),
		relation.Col("brand_id", relation.Int),
	).SetPrimaryKey("id").AddForeignKey("brand_id", "brand", "id")
	brandW := zipfWeights(cfg.NumBrands, cfg.Skew)
	// brandOf[p] is product p's brand; groupProducts[g] collects each
	// planted brand's shelf so the planted purchases reference real rows.
	brandOf := make([]int, cfg.NumProducts)
	groupProducts := make([][]int, cfg.NumGroups)
	for i := 0; i < cfg.NumProducts; i++ {
		b := weightedPick(rng, brandW)
		if i%97 < cfg.NumGroups {
			b = i % 97 // guarantee every planted brand a shelf at any skew
		}
		brandOf[i] = b
		if b < cfg.NumGroups {
			groupProducts[b] = append(groupProducts[b], i)
		}
		price := float64(1+rng.Intn(49900)) / 100.0
		product.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(productName(i)),
			relation.FloatVal(price),
			relation.IntVal(int64(b)),
		)
	}
	db.AddRelation(product)
	db.MarkEntity("product")

	// --- producttotag ------------------------------------------------
	// Tags 0..NumGroups-1 are reserved for the planted brands: the
	// random assignment never picks them, and every planted-brand
	// product carries its group's tag — so the customer↔tag association
	// separates the loyalist groups exactly like customer↔brand does.
	pt := relation.New("producttotag",
		relation.Col("product_id", relation.Int),
		relation.Col("tag_id", relation.Int),
	).AddForeignKey("product_id", "product", "id").AddForeignKey("tag_id", "tag", "id")
	tagW := zipfWeights(cfg.NumTags, 0.9)
	for g := 0; g < cfg.NumGroups; g++ {
		tagW[g] = 0
	}
	renormalize(tagW)
	for p := 0; p < cfg.NumProducts; p++ {
		if brandOf[p] < cfg.NumGroups {
			pt.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64(brandOf[p])))
		}
		n := 1 + rng.Intn(cfg.TagsPerProduct*2-1)
		ts := map[int]struct{}{}
		for len(ts) < n {
			ts[weightedPick(rng, tagW)] = struct{}{}
		}
		for tg := range ts {
			pt.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64(tg)))
		}
	}
	db.AddRelation(pt)

	// --- purchase (the fact table) -----------------------------------
	purchase := relation.New("purchase",
		relation.Col("customer_id", relation.Int),
		relation.Col("product_id", relation.Int),
		relation.Col("channel_id", relation.Int),
	).AddForeignKey("customer_id", "customer", "id").
		AddForeignKey("product_id", "product", "id").
		AddForeignKey("channel_id", "channel", "id")
	// Background stream: Zipf-skewed popularity on both sides, shuffled
	// so activity is independent of the id ranges the plants use. The
	// customer side uses a mild exponent — activity varies a few-fold,
	// not by orders of magnitude — so the planted loyalists' purchase
	// volume sits in the far tail of the background distribution.
	// Loyalists draw NO background purchases and planted-brand products
	// are suppressed to 2% of their natural weight: the planted classes
	// must be separated by their associations, not diluted into the
	// background head.
	customerW := zipfWeights(cfg.NumCustomers, 0.15)
	rng.Shuffle(len(customerW), func(i, j int) { customerW[i], customerW[j] = customerW[j], customerW[i] })
	for id := range loyalOrd {
		customerW[id] = 0
	}
	renormalize(customerW)
	productW := zipfWeights(cfg.NumProducts, cfg.Skew)
	rng.Shuffle(len(productW), func(i, j int) { productW[i], productW[j] = productW[j], productW[i] })
	for p, b := range brandOf {
		if b < cfg.NumGroups {
			productW[p] *= 0.02
		}
	}
	renormalize(productW)
	// The last NumGroups channels are the groups' boutique channels:
	// zero background weight, used exclusively by the planted purchases.
	channelW := zipfWeights(cfg.NumChannels, 0.7)
	for g := 0; g < cfg.NumGroups; g++ {
		channelW[cfg.NumChannels-1-g] = 0
	}
	renormalize(channelW)
	buy := func(c, p int64, ch int) {
		purchase.MustAppend(relation.IntVal(c), relation.IntVal(p), relation.IntVal(int64(ch)))
	}
	for i := 0; i < cfg.NumFacts; i++ {
		buy(int64(weightedPick(rng, customerW)),
			int64(weightedPick(rng, productW)),
			weightedPick(rng, channelW))
	}

	// Planted purchases: each member of group g buys 25-35 distinct
	// products of brand g through the group's boutique channel — strong
	// customer↔brand, customer↔tag, and customer↔channel associations
	// at GroupSize/NumCustomers selectivity, with a purchase volume deep
	// in the background tail so the purchase-count association separates
	// the class too.
	for g := 0; g < cfg.NumGroups; g++ {
		shelf := groupProducts[g]
		ch := cfg.NumChannels - 1 - g
		for _, c := range out.Groups[g] {
			k := 25 + rng.Intn(11)
			if k > len(shelf) {
				k = len(shelf)
			}
			for _, pi := range sampleDistinct(rng, len(shelf), k) {
				buy(c, int64(shelf[pi]), ch)
			}
		}
	}
	db.AddRelation(purchase)

	return out
}

// GenExampleSets derives the benchmark example sets for a generated
// database as a pure function of its config — prefixes of each planted
// loyalist group at several |E| — so a bench run that loads a fixture
// snapshot can reconstruct the workload without regenerating the
// dataset. Every set is a meaningful entity class (the paper's usage:
// a user exemplifies a concept, not random tuples), and names are
// unique by construction (personName is injective), so every example
// resolves unambiguously.
func GenExampleSets(cfg GenConfig) [][]string {
	cfg = normalizeGen(cfg)
	var sets [][]string
	for g := 0; g < cfg.NumGroups; g++ {
		sizes := []int{4, 8}
		if g == 0 {
			sizes = []int{4, 8, 12}
		}
		for _, k := range sizes {
			if k > cfg.GroupSize {
				continue
			}
			ex := make([]string, 0, k)
			for j := 0; j < k; j++ {
				ex = append(ex, personName(loyalistID(cfg, g, j)))
			}
			sets = append(sets, ex)
		}
	}
	return sets
}
