package datagen

import (
	"math/rand"

	"squid/internal/relation"
)

// IMDbConfig scales the synthetic IMDb-like database. The defaults keep
// the whole evaluation laptop-scale while preserving the paper's
// cardinality ratios (persons ≫ movies ≫ companies, castinfo the largest
// fact table).
type IMDbConfig struct {
	Seed       int64
	NumPersons int
	NumMovies  int
	NumCompany int
}

// DefaultIMDbConfig returns the scale used by the experiment harness.
func DefaultIMDbConfig() IMDbConfig {
	return IMDbConfig{Seed: 20190625, NumPersons: 8000, NumMovies: 2500, NumCompany: 120}
}

// IMDb bundles the generated database with the planted ground-truth
// structures the benchmark queries and case studies reference.
type IMDb struct {
	DB  *relation.Database
	Cfg IMDbConfig

	// Planted structure indexes (entity ids).
	BlockbusterID    int64   // IQ1: a movie with a very large cast
	BlockbusterTitle string  //
	TrilogyIDs       []int64 // IQ2: three movies sharing a core cast
	TrilogyTitles    []string
	TrilogyCast      []int64 // persons in all three parts
	DuoA, DuoB       int64   // IQ5: two stars with many co-appearances
	DuoMovies        []int64 // movies with both
	DirectorID       int64   // IQ6: director who also acts in own movies
	DirectorName     string
	DirectedMovies   []int64
	ProducerCompany  string  // IQ12/IQ13/IQ16 company name
	Comedians        []int64 // case study (a): latent funny-actor class
	ActionStars      []int64 // Example 1.2 ET1 analogue
	SciFi2000s       []int64 // case study (b): 2000s Sci-Fi movie ids
	AmbiguousTitle   string  // Fig 12: title shared by several movies
	AmbiguousIDs     []int64
	AmbiguousNames   []string // Fig 12: person names shared by duplicates

	// Popularity is a per-person popularity score (number of credits),
	// the basis of the case-study popularity masks (Appendix D
	// footnote 14).
	Popularity map[int64]int
}

// Genre ids used by the generator (position in the genres slice).
var imdbGenres = []string{
	"Comedy", "Drama", "Action", "SciFi", "Thriller", "Horror",
	"Romance", "Animation", "Documentary", "Crime", "Fantasy", "Mystery",
	"Adventure", "Family", "War", "Western", "Musical", "Sport",
}

var imdbCountries = []string{
	"USA", "UK", "Canada", "France", "Germany", "India", "Japan",
	"Italy", "Russia", "Spain", "Australia", "China", "Brazil", "Mexico",
}

var imdbLanguages = []string{
	"English", "French", "German", "Hindi", "Japanese", "Italian",
	"Russian", "Spanish", "Mandarin", "Portuguese",
}

var imdbCertificates = []string{"G", "PG", "PG-13", "R", "NC-17"}

var imdbRoles = []string{"Actor", "Director", "Producer", "Writer", "Cinematographer"}

var imdbKeywords = []string{
	"hero", "revenge", "love", "space", "war", "family", "heist",
	"robot", "magic", "detective", "road-trip", "sports", "politics",
	"music", "courtroom", "zombie", "time-travel", "high-school",
}

var imdbAwards = []string{
	"Academy Award", "Golden Globe", "BAFTA", "Screen Actors Guild",
	"Critics Choice", "Saturn Award",
}

// GenerateIMDb builds the 15-relation IMDb-like database with all
// planted structures. Scales below 600 persons / 200 movies are clamped
// so every planted structure fits.
func GenerateIMDb(cfg IMDbConfig) *IMDb {
	if cfg.NumPersons < 600 {
		cfg.NumPersons = 600
	}
	if cfg.NumMovies < 200 {
		cfg.NumMovies = 200
	}
	if cfg.NumCompany < 10 {
		cfg.NumCompany = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &IMDb{Cfg: cfg, Popularity: make(map[int64]int)}
	db := relation.NewDatabase("imdb")
	out.DB = db

	// --- Dimension (property) relations -----------------------------
	addDim := func(name string, values []string) {
		r := relation.New(name,
			relation.Col("id", relation.Int),
			relation.Col("name", relation.String),
		).SetPrimaryKey("id")
		for i, v := range values {
			r.MustAppend(relation.IntVal(int64(i)), relation.StringVal(v))
		}
		db.AddRelation(r)
		db.MarkProperty(name)
	}
	addDim("genre", imdbGenres)
	addDim("country", imdbCountries)
	addDim("language", imdbLanguages)
	addDim("role", imdbRoles)
	addDim("keyword", imdbKeywords)
	addDim("award", imdbAwards)

	// --- person ------------------------------------------------------
	person := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("gender", relation.String),
		relation.Col("birth_year", relation.Int),
		relation.Col("country_id", relation.Int),
	).SetPrimaryKey("id").AddForeignKey("country_id", "country", "id")
	countryW := zipfWeights(len(imdbCountries), 1.1)
	for i := 0; i < cfg.NumPersons; i++ {
		gender := "Male"
		if rng.Intn(100) < 45 {
			gender = "Female"
		}
		person.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(personName(i)),
			relation.StringVal(gender),
			relation.IntVal(int64(1930+rng.Intn(75))),
			relation.IntVal(int64(weightedPick(rng, countryW))),
		)
	}
	db.AddRelation(person)
	db.MarkEntity("person")

	// --- movie -------------------------------------------------------
	movie := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
		relation.Col("year", relation.Int),
		relation.Col("decade", relation.String),
		relation.Col("certificate", relation.String),
		relation.Col("language_id", relation.Int),
	).SetPrimaryKey("id").AddForeignKey("language_id", "language", "id")
	langW := zipfWeights(len(imdbLanguages), 1.3)
	years := make([]int, cfg.NumMovies)
	for i := 0; i < cfg.NumMovies; i++ {
		year := 1960 + rng.Intn(60) // 1960-2019
		years[i] = year
		movie.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(movieTitle(i)),
			relation.IntVal(int64(year)),
			relation.StringVal(decadeOf(year)),
			relation.StringVal(imdbCertificates[weightedPick(rng, zipfWeights(len(imdbCertificates), 0.6))]),
			relation.IntVal(int64(weightedPick(rng, langW))),
		)
	}
	db.AddRelation(movie)
	db.MarkEntity("movie")

	// --- company -----------------------------------------------------
	company := relation.New("company",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("country_id", relation.Int),
	).SetPrimaryKey("id").AddForeignKey("country_id", "country", "id")
	for i := 0; i < cfg.NumCompany; i++ {
		name := "Studio " + movieTitle(i * 7)[4:]
		if i == 0 {
			name = "Mouse House Pictures" // the Walt-Disney-like producer
			out.ProducerCompany = name
		}
		company.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(name),
			relation.IntVal(int64(weightedPick(rng, countryW))),
		)
	}
	db.AddRelation(company)
	db.MarkEntity("company")

	// --- movietogenre ------------------------------------------------
	mg := relation.New("movietogenre",
		relation.Col("movie_id", relation.Int),
		relation.Col("genre_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("genre_id", "genre", "id")
	genreW := zipfWeights(len(imdbGenres), 0.9)
	movieGenres := make([][]int, cfg.NumMovies)
	for m := 0; m < cfg.NumMovies; m++ {
		n := 1 + rng.Intn(3)
		gs := map[int]struct{}{}
		for len(gs) < n {
			gs[weightedPick(rng, genreW)] = struct{}{}
		}
		for g := range gs {
			movieGenres[m] = append(movieGenres[m], g)
			mg.MustAppend(relation.IntVal(int64(m)), relation.IntVal(int64(g)))
		}
	}
	// Plant the 2000s Sci-Fi class: movies with year in [2000,2009] and
	// index ≡ 3 mod 7 get the SciFi genre (id 3) if not already present.
	scifi := indexOf(imdbGenres, "SciFi")
	for m := 0; m < cfg.NumMovies; m++ {
		if years[m] >= 2000 && years[m] <= 2009 && m%7 == 3 {
			if !containsInt(movieGenres[m], scifi) {
				movieGenres[m] = append(movieGenres[m], scifi)
				mg.MustAppend(relation.IntVal(int64(m)), relation.IntVal(int64(scifi)))
			}
			out.SciFi2000s = append(out.SciFi2000s, int64(m))
		} else if years[m] >= 2000 && years[m] <= 2009 && containsInt(movieGenres[m], scifi) {
			out.SciFi2000s = append(out.SciFi2000s, int64(m))
		}
	}
	db.AddRelation(mg)

	// --- movietocountry ---------------------------------------------
	mc := relation.New("movietocountry",
		relation.Col("movie_id", relation.Int),
		relation.Col("country_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("country_id", "country", "id")
	usa := indexOf(imdbCountries, "USA")
	movieCountries := make([][]int, cfg.NumMovies)
	for m := 0; m < cfg.NumMovies; m++ {
		// 55% of movies released in USA (statistically common property,
		// the IQ4/IQ11 slow-convergence driver), plus 0-2 others.
		cs := map[int]struct{}{}
		if rng.Intn(100) < 55 {
			cs[usa] = struct{}{}
		}
		for extra := rng.Intn(3); extra > 0 && len(cs) < 3; extra-- {
			cs[weightedPick(rng, countryW)] = struct{}{}
		}
		if len(cs) == 0 {
			cs[weightedPick(rng, countryW)] = struct{}{}
		}
		for c := range cs {
			movieCountries[m] = append(movieCountries[m], c)
			mc.MustAppend(relation.IntVal(int64(m)), relation.IntVal(int64(c)))
		}
	}
	db.AddRelation(mc)

	// --- movietocompany ----------------------------------------------
	mcomp := relation.New("movietocompany",
		relation.Col("movie_id", relation.Int),
		relation.Col("company_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("company_id", "company", "id")
	compW := zipfWeights(cfg.NumCompany, 1.0)
	for m := 0; m < cfg.NumMovies; m++ {
		mcomp.MustAppend(relation.IntVal(int64(m)), relation.IntVal(int64(weightedPick(rng, compW))))
	}
	db.AddRelation(mcomp)

	// --- movietokeyword ----------------------------------------------
	mk := relation.New("movietokeyword",
		relation.Col("movie_id", relation.Int),
		relation.Col("keyword_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("keyword_id", "keyword", "id")
	kwW := zipfWeights(len(imdbKeywords), 0.8)
	for m := 0; m < cfg.NumMovies; m++ {
		n := 1 + rng.Intn(4)
		ks := map[int]struct{}{}
		for len(ks) < n {
			ks[weightedPick(rng, kwW)] = struct{}{}
		}
		for k := range ks {
			mk.MustAppend(relation.IntVal(int64(m)), relation.IntVal(int64(k)))
		}
	}
	db.AddRelation(mk)

	// --- castinfo (the big fact table) --------------------------------
	ci := relation.New("castinfo",
		relation.Col("person_id", relation.Int),
		relation.Col("movie_id", relation.Int),
		relation.Col("role_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").
		AddForeignKey("movie_id", "movie", "id").
		AddForeignKey("role_id", "role", "id")
	actorRole := indexOf(imdbRoles, "Actor")
	directorRole := indexOf(imdbRoles, "Director")
	// Popularity skew, shuffled so that popularity is independent of the
	// person id (otherwise the low ids — which double as ambiguity
	// plants — would all be mega-stars sharing hundreds of credits).
	personW := zipfWeights(cfg.NumPersons, 0.7)
	rng.Shuffle(len(personW), func(i, j int) { personW[i], personW[j] = personW[j], personW[i] })
	cast := func(p, m int64, role int) {
		ci.MustAppend(relation.IntVal(p), relation.IntVal(m), relation.IntVal(int64(role)))
		out.Popularity[p]++
	}
	// Generic casting: each movie gets 6-18 actors plus a director.
	for m := 0; m < cfg.NumMovies; m++ {
		n := 6 + rng.Intn(13)
		seen := map[int]struct{}{}
		for len(seen) < n {
			p := weightedPick(rng, personW)
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			cast(int64(p), int64(m), actorRole)
		}
		cast(int64(weightedPick(rng, personW)), int64(m), directorRole)
	}

	// Planted: comedians (case study a / Example 1.3). Persons
	// 10..10+K-1 appear in many comedies.
	comedyGenre := indexOf(imdbGenres, "Comedy")
	comedyMovies := moviesWithGenre(movieGenres, comedyGenre)
	numComedians := cfg.NumPersons / 50
	for i := 0; i < numComedians; i++ {
		p := int64(10 + i)
		out.Comedians = append(out.Comedians, p)
		for _, m := range sampleDistinct(rng, len(comedyMovies), 14+rng.Intn(8)) {
			cast(p, int64(comedyMovies[m]), actorRole)
		}
	}
	// Planted: action stars (ET1 analogue), starting halfway through the
	// person id range.
	actionGenre := indexOf(imdbGenres, "Action")
	actionMovies := moviesWithGenre(movieGenres, actionGenre)
	actionBase := cfg.NumPersons / 2
	for i := 0; i < numComedians/2; i++ {
		p := int64(actionBase + i)
		out.ActionStars = append(out.ActionStars, p)
		for _, m := range sampleDistinct(rng, len(actionMovies), 12+rng.Intn(8)) {
			cast(p, int64(actionMovies[m]), actorRole)
		}
	}

	// Planted: blockbuster with a huge cast (IQ1).
	out.BlockbusterID = 0
	out.BlockbusterTitle = movieTitle(0)
	blockCast := sampleDistinct(rng, cfg.NumPersons, 110)
	for _, p := range blockCast {
		cast(int64(p), out.BlockbusterID, actorRole)
	}

	// Planted: trilogy with 20 shared actors (IQ2): movies 1, 2, 3.
	out.TrilogyIDs = []int64{1, 2, 3}
	for _, id := range out.TrilogyIDs {
		out.TrilogyTitles = append(out.TrilogyTitles, movieTitle(int(id)))
	}
	shared := sampleDistinct(rng, cfg.NumPersons, 20)
	for _, p := range shared {
		out.TrilogyCast = append(out.TrilogyCast, int64(p))
		for _, m := range out.TrilogyIDs {
			cast(int64(p), m, actorRole)
		}
	}
	// Each part also gets its own extra cast so intersection matters.
	for _, m := range out.TrilogyIDs {
		for _, p := range sampleDistinct(rng, cfg.NumPersons, 15) {
			cast(int64(p), m, actorRole)
		}
	}

	// Planted: the co-starring duo (IQ5) shares 12 movies (ids 50..61).
	out.DuoA, out.DuoB = int64(cfg.NumPersons/4), int64(cfg.NumPersons/4+1)
	for m := 50; m < 62; m++ {
		out.DuoMovies = append(out.DuoMovies, int64(m))
		cast(out.DuoA, int64(m), actorRole)
		cast(out.DuoB, int64(m), actorRole)
	}

	// Planted: director who also acts (IQ6) directs movies 100..135 and
	// acts in most of them.
	out.DirectorID = int64(cfg.NumPersons/4 + 2)
	out.DirectorName = personName(int(out.DirectorID))
	for m := 100; m < 136; m++ {
		out.DirectedMovies = append(out.DirectedMovies, int64(m))
		cast(out.DirectorID, int64(m), directorRole)
		if m%4 != 0 { // acts in 75% of his own movies
			cast(out.DirectorID, int64(m), actorRole)
		}
	}
	db.AddRelation(ci)

	// --- persontoaward -----------------------------------------------
	pa := relation.New("persontoaward",
		relation.Col("person_id", relation.Int),
		relation.Col("award_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").AddForeignKey("award_id", "award", "id")
	awardW := zipfWeights(len(imdbAwards), 0.7)
	for i := 0; i < cfg.NumPersons/20; i++ {
		p := weightedPick(rng, personW)
		pa.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64(weightedPick(rng, awardW))))
	}
	db.AddRelation(pa)

	// --- ambiguity plants (Fig 12) -----------------------------------
	// Several movies share one title (appended rows), and a handful of
	// person names are duplicated: rename person i+1 to person i's name
	// for a few planted pairs far apart in attribute space.
	out.AmbiguousTitle = "The Sinking Voyage"
	ambYears := []int{1915, 1943, 1969, 2005}
	for k, year := range ambYears {
		id := int64(cfg.NumMovies + k)
		movie.MustAppend(
			relation.IntVal(id),
			relation.StringVal(out.AmbiguousTitle),
			relation.IntVal(int64(year)),
			relation.StringVal(decadeOf(year)),
			relation.StringVal("PG"),
			relation.IntVal(int64(weightedPick(rng, langW))),
		)
		out.AmbiguousIDs = append(out.AmbiguousIDs, id)
		// Only the 2005 copy is Sci-Fi — it belongs to the 2000s
		// Sci-Fi intent; the older namesakes get a different genre so
		// the wrong mapping visibly hurts accuracy (Fig 12).
		if year >= 2000 {
			mg.MustAppend(relation.IntVal(id), relation.IntVal(int64(scifi)))
			out.SciFi2000s = append(out.SciFi2000s, id)
		} else {
			mg.MustAppend(relation.IntVal(id), relation.IntVal(int64(indexOf(imdbGenres, "War"))))
		}
		mc.MustAppend(relation.IntVal(id), relation.IntVal(int64(usa)))
	}
	// Duplicate person names: persons 0..9 (ordinary, low-credit rows
	// that precede the comedians in index order) take the names of the
	// first comedians, making those names ambiguous — and making the
	// naive first-match resolution pick the wrong, non-comedian entity
	// (the Fig 12 setup).
	nameCol := person.Column("name")
	for k := 0; k < 10 && k < len(out.Comedians); k++ {
		origRow := int(out.Comedians[k]) // comedians start at row 10
		name := nameCol.Str(origRow)
		_ = nameCol.Set(k, relation.StringVal(name))
		out.AmbiguousNames = append(out.AmbiguousNames, name)
	}

	return out
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func moviesWithGenre(movieGenres [][]int, genre int) []int {
	var out []int
	for m, gs := range movieGenres {
		if containsInt(gs, genre) {
			out = append(out, m)
		}
	}
	return out
}
