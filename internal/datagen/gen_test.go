package datagen

import (
	"testing"
)

// tinyGen returns a small config for fast tests.
func tinyGen() GenConfig {
	return GenConfig{
		Seed: 7, NumCustomers: 800, NumProducts: 200, NumFacts: 6000,
		Skew: 1.05, NumRegions: 6, NumSegments: 4, NumBrands: 10,
		NumTags: 8, TagsPerProduct: 2, NumGroups: 2, GroupSize: 16,
	}
}

func TestGenSchemaShape(t *testing.T) {
	g := GenerateGen(tinyGen())
	// 5 dims + customer + product + producttotag + purchase.
	if got := g.DB.NumRelations(); got != 9 {
		t.Errorf("relations=%d want 9", got)
	}
	// Validate walks every FK — the generated facts must be consistent
	// with the entity and dimension rows they reference.
	if err := g.DB.Validate(); err != nil {
		t.Fatalf("referential integrity: %v", err)
	}
	if got := len(g.DB.EntityRelations()); got != 2 {
		t.Errorf("entities=%v", g.DB.EntityRelations())
	}
	c := g.DB.Relation("customer").NumRows()
	p := g.DB.Relation("product").NumRows()
	f := g.DB.Relation("purchase").NumRows()
	if !(c > p) || f < c {
		t.Errorf("cardinality shape broken: customers=%d products=%d facts=%d", c, p, f)
	}
	// Distinct-value budgets are honored exactly.
	for _, d := range []struct {
		rel  string
		want int
	}{{"region", 6}, {"segment", 4}, {"brand", 10}, {"tag", 8}} {
		if got := g.DB.Relation(d.rel).NumRows(); got != d.want {
			t.Errorf("%s rows=%d want %d", d.rel, got, d.want)
		}
	}
}

func TestGenDeterminism(t *testing.T) {
	a := GenerateGen(tinyGen())
	b := GenerateGen(tinyGen())
	if a.DB.TotalRows() != b.DB.TotalRows() {
		t.Fatal("generation not deterministic in size")
	}
	ra, rb := a.DB.Relation("purchase"), b.DB.Relation("purchase")
	for _, row := range []int{0, 100, ra.NumRows() - 1} {
		for _, col := range []string{"customer_id", "product_id", "channel_id"} {
			if !ra.Get(row, col).Equal(rb.Get(row, col)) {
				t.Fatalf("cell (%d,%s) differs", row, col)
			}
		}
	}
	// A different seed produces a different database.
	cfg := tinyGen()
	cfg.Seed = 8
	if c := GenerateGen(cfg); c.DB.Relation("purchase").Get(0, "product_id").Equal(ra.Get(0, "product_id")) &&
		c.DB.Relation("purchase").Get(1, "product_id").Equal(ra.Get(1, "product_id")) &&
		c.DB.Relation("purchase").Get(2, "product_id").Equal(ra.Get(2, "product_id")) {
		t.Error("seed change did not move the fact table")
	}
}

func TestGenPlantedLoyalists(t *testing.T) {
	g := GenerateGen(tinyGen())
	if len(g.Loyalists) < 4 {
		t.Fatalf("only %d loyalists planted", len(g.Loyalists))
	}
	// Loyal-brand product ids.
	product := g.DB.Relation("product")
	loyal := map[int64]bool{}
	bcol := product.Column("brand_id")
	for i := 0; i < product.NumRows(); i++ {
		if bcol.Get(i).Int() == 0 {
			loyal[product.Get(i, "id").Int()] = true
		}
	}
	// Every loyalist has many distinct loyal-brand purchases.
	purchase := g.DB.Relation("purchase")
	ccol, pcol := purchase.Column("customer_id"), purchase.Column("product_id")
	counts := map[int64]map[int64]bool{}
	for i := 0; i < purchase.NumRows(); i++ {
		if p := pcol.Get(i).Int(); loyal[p] {
			c := ccol.Get(i).Int()
			if counts[c] == nil {
				counts[c] = map[int64]bool{}
			}
			counts[c][p] = true
		}
	}
	for _, c := range g.Loyalists {
		if len(counts[c]) < 8 {
			t.Errorf("loyalist %d has only %d distinct loyal-brand purchases", c, len(counts[c]))
		}
	}
}

// TestGenExampleSetsResolve pins the fixture contract: example sets
// derived from the config alone (no Gen struct) name real, planted
// customers — the property a bench run loading a snapshot depends on.
func TestGenExampleSetsResolve(t *testing.T) {
	cfg := tinyGen()
	g := GenerateGen(cfg)
	sets := GenExampleSets(cfg)
	if len(sets) < 3 {
		t.Fatalf("only %d example sets", len(sets))
	}
	names := map[string]bool{}
	customer := g.DB.Relation("customer")
	ncol := customer.Column("name")
	for i := 0; i < customer.NumRows(); i++ {
		names[ncol.Str(i)] = true
	}
	loyalistNames := map[string]bool{}
	for _, id := range g.Loyalists {
		loyalistNames[ncol.Str(int(id))] = true
	}
	for si, set := range sets {
		for _, n := range set {
			if !names[n] {
				t.Fatalf("set %d example %q is not a customer", si, n)
			}
		}
	}
	// The first set must be exactly planted loyalists.
	for _, n := range sets[0] {
		if !loyalistNames[n] {
			t.Errorf("first set example %q is not a planted loyalist", n)
		}
	}
}
