package datagen

import (
	"math/rand"
	"testing"

	"squid/internal/relation"
)

// tinyIMDb returns a small config for fast tests.
func tinyIMDb() IMDbConfig {
	return IMDbConfig{Seed: 7, NumPersons: 600, NumMovies: 300, NumCompany: 20}
}

func TestIMDbSchemaShape(t *testing.T) {
	g := GenerateIMDb(tinyIMDb())
	if got := g.DB.NumRelations(); got != 15 {
		t.Errorf("relations=%d want 15 (paper: IMDb has 15 relations)", got)
	}
	if err := g.DB.Validate(); err != nil {
		t.Fatalf("referential integrity: %v", err)
	}
	if len(g.DB.EntityRelations()) != 3 {
		t.Errorf("entities=%v", g.DB.EntityRelations())
	}
	// Cardinality ordering: persons > movies > companies; castinfo
	// largest fact table.
	p, m, c := g.DB.Relation("person").NumRows(), g.DB.Relation("movie").NumRows(), g.DB.Relation("company").NumRows()
	if !(p > m && m > c) {
		t.Errorf("cardinality ordering broken: %d %d %d", p, m, c)
	}
	ci := g.DB.Relation("castinfo").NumRows()
	if ci < p {
		t.Errorf("castinfo=%d should dominate persons=%d", ci, p)
	}
}

func TestIMDbDeterminism(t *testing.T) {
	a := GenerateIMDb(tinyIMDb())
	b := GenerateIMDb(tinyIMDb())
	if a.DB.TotalRows() != b.DB.TotalRows() {
		t.Fatal("generation not deterministic in size")
	}
	// Spot-check some cells.
	ra, rb := a.DB.Relation("castinfo"), b.DB.Relation("castinfo")
	for _, row := range []int{0, 100, ra.NumRows() - 1} {
		for _, col := range []string{"person_id", "movie_id"} {
			if !ra.Get(row, col).Equal(rb.Get(row, col)) {
				t.Fatalf("cell (%d,%s) differs", row, col)
			}
		}
	}
}

func TestIMDbPlantedBlockbuster(t *testing.T) {
	g := GenerateIMDb(tinyIMDb())
	ci := g.DB.Relation("castinfo")
	pcol, mcol := ci.Column("person_id"), ci.Column("movie_id")
	cast := map[int64]bool{}
	for i := 0; i < ci.NumRows(); i++ {
		if mcol.Int64(i) == g.BlockbusterID {
			cast[pcol.Int64(i)] = true
		}
	}
	if len(cast) < 100 {
		t.Errorf("blockbuster cast=%d want ≥100 (IQ1 needs a large cast)", len(cast))
	}
}

func TestIMDbPlantedTrilogy(t *testing.T) {
	g := GenerateIMDb(tinyIMDb())
	if len(g.TrilogyIDs) != 3 || len(g.TrilogyCast) != 20 {
		t.Fatalf("trilogy plant wrong: %d movies, %d shared cast", len(g.TrilogyIDs), len(g.TrilogyCast))
	}
	// Every shared-cast member appears in all three parts.
	ci := g.DB.Relation("castinfo")
	pcol, mcol := ci.Column("person_id"), ci.Column("movie_id")
	appear := map[int64]map[int64]bool{}
	for i := 0; i < ci.NumRows(); i++ {
		p, m := pcol.Int64(i), mcol.Int64(i)
		if appear[p] == nil {
			appear[p] = map[int64]bool{}
		}
		appear[p][m] = true
	}
	for _, p := range g.TrilogyCast {
		for _, m := range g.TrilogyIDs {
			if !appear[p][m] {
				t.Errorf("trilogy member %d missing from movie %d", p, m)
			}
		}
	}
}

func TestIMDbPlantedComedians(t *testing.T) {
	g := GenerateIMDb(tinyIMDb())
	if len(g.Comedians) == 0 {
		t.Fatal("no comedians planted")
	}
	// Comedians must have many comedy credits: verify via the genre of
	// their movies.
	genreOf := map[int64][]int64{}
	mg := g.DB.Relation("movietogenre")
	for i := 0; i < mg.NumRows(); i++ {
		m := mg.Column("movie_id").Int64(i)
		genreOf[m] = append(genreOf[m], mg.Column("genre_id").Int64(i))
	}
	ci := g.DB.Relation("castinfo")
	pcol, mcol := ci.Column("person_id"), ci.Column("movie_id")
	comedyCount := map[int64]map[int64]bool{}
	for i := 0; i < ci.NumRows(); i++ {
		p, m := pcol.Int64(i), mcol.Int64(i)
		for _, gid := range genreOf[m] {
			if gid == 0 { // Comedy is genre id 0
				if comedyCount[p] == nil {
					comedyCount[p] = map[int64]bool{}
				}
				comedyCount[p][m] = true
			}
		}
	}
	for _, c := range g.Comedians {
		if len(comedyCount[c]) < 10 {
			t.Errorf("comedian %d has only %d comedies", c, len(comedyCount[c]))
		}
	}
}

func TestIMDbAmbiguityPlants(t *testing.T) {
	g := GenerateIMDb(tinyIMDb())
	if len(g.AmbiguousIDs) != 4 {
		t.Fatalf("ambiguous movies=%d", len(g.AmbiguousIDs))
	}
	m := g.DB.Relation("movie")
	count := 0
	tcol := m.Column("title")
	for i := 0; i < m.NumRows(); i++ {
		if tcol.Str(i) == g.AmbiguousTitle {
			count++
		}
	}
	if count != 4 {
		t.Errorf("title %q appears %d times want 4", g.AmbiguousTitle, count)
	}
	if len(g.AmbiguousNames) == 0 {
		t.Error("no ambiguous person names planted")
	}
	// Each ambiguous name appears at least twice in person.name.
	p := g.DB.Relation("person")
	ncol := p.Column("name")
	for _, name := range g.AmbiguousNames {
		n := 0
		for i := 0; i < p.NumRows(); i++ {
			if ncol.Str(i) == name {
				n++
			}
		}
		if n < 2 {
			t.Errorf("ambiguous name %q appears %d times", name, n)
		}
	}
}

func TestIMDbVariants(t *testing.T) {
	g := GenerateIMDb(tinyIMDb())
	bs := BSIMDb(g)
	bd := BDIMDb(g)
	if err := bs.Validate(); err != nil {
		t.Fatalf("bs-IMDb integrity: %v", err)
	}
	if err := bd.Validate(); err != nil {
		t.Fatalf("bd-IMDb integrity: %v", err)
	}
	// Entities double.
	if got, want := bs.Relation("person").NumRows(), 2*g.DB.Relation("person").NumRows(); got != want {
		t.Errorf("bs persons=%d want %d", got, want)
	}
	// castinfo: bs = 2×, bd = 4× the original.
	orig := g.DB.Relation("castinfo").NumRows()
	if got := bs.Relation("castinfo").NumRows(); got != 2*orig {
		t.Errorf("bs castinfo=%d want %d", got, 2*orig)
	}
	if got := bd.Relation("castinfo").NumRows(); got != 4*orig {
		t.Errorf("bd castinfo=%d want %d", got, 4*orig)
	}
	// bd is strictly larger than bs (denser associations).
	if bd.TotalRows() <= bs.TotalRows() {
		t.Error("bd must be denser than bs")
	}
}

func TestDBLPSchemaShape(t *testing.T) {
	g := GenerateDBLP(DBLPConfig{Seed: 3, NumAuthor: 400, NumPubs: 800})
	if got := g.DB.NumRelations(); got != 14 {
		t.Errorf("relations=%d want 14 (paper: DBLP has 14 relations)", got)
	}
	if err := g.DB.Validate(); err != nil {
		t.Fatalf("referential integrity: %v", err)
	}
	if len(g.Prolific) != 30 {
		t.Errorf("prolific=%d want 30", len(g.Prolific))
	}
	if len(g.Trio) != 3 || len(g.TrioPubs) != 15 {
		t.Errorf("trio plant wrong")
	}
	if len(g.DualAffil) != 20 {
		t.Errorf("dual-affiliation plant wrong: %d", len(g.DualAffil))
	}
}

func TestDBLPPlantedProlific(t *testing.T) {
	g := GenerateDBLP(DBLPConfig{Seed: 3, NumAuthor: 400, NumPubs: 800})
	// Prolific authors should clearly out-publish the median author.
	for _, a := range g.Prolific {
		if g.PubCount[a] < 20 {
			t.Errorf("prolific author %d has only %d pubs", a, g.PubCount[a])
		}
	}
}

func TestAdultShape(t *testing.T) {
	g := GenerateAdult(AdultConfig{Seed: 5, NumRows: 500, ScaleFactor: 1})
	if g.DB.NumRelations() != 1 {
		t.Errorf("relations=%d want 1", g.DB.NumRelations())
	}
	r := g.DB.Relation("adult")
	if r.NumRows() != 500 {
		t.Errorf("rows=%d", r.NumRows())
	}
	if err := g.DB.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumCols() != 16 {
		t.Errorf("cols=%d want 16", r.NumCols())
	}
}

func TestAdultScaleFactor(t *testing.T) {
	base := GenerateAdult(AdultConfig{Seed: 5, NumRows: 300, ScaleFactor: 1})
	x3 := GenerateAdult(AdultConfig{Seed: 5, NumRows: 300, ScaleFactor: 3})
	if got, want := x3.DB.Relation("adult").NumRows(), 3*base.DB.Relation("adult").NumRows(); got != want {
		t.Errorf("scaled rows=%d want %d", got, want)
	}
	if err := x3.DB.Validate(); err != nil {
		t.Fatalf("scaled integrity (unique PKs): %v", err)
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(10, 1.0)
	sum := 0.0
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Error("weights must be non-increasing")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum=%v", sum)
	}
}

func TestNameGenerators(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		n := personName(i)
		if seen[n] {
			t.Fatalf("duplicate person name %q at %d", n, i)
		}
		seen[n] = true
	}
	seen = map[string]bool{}
	for i := 0; i < 2000; i++ {
		n := movieTitle(i)
		if seen[n] {
			t.Fatalf("duplicate movie title %q at %d", n, i)
		}
		seen[n] = true
	}
	if decadeOf(1997) != "1990s" || decadeOf(2005) != "2000s" {
		t.Error("decade bucketing wrong")
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	got := sampleDistinct(rng, 10, 5)
	if len(got) != 5 {
		t.Fatalf("len=%d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", got)
		}
		seen[v] = true
	}
	// k ≥ n returns everything.
	if got := sampleDistinct(rng, 3, 10); len(got) != 3 {
		t.Errorf("overflow sample=%v", got)
	}
}

func TestVariantsPreserveDimensions(t *testing.T) {
	g := GenerateIMDb(tinyIMDb())
	bs := BSIMDb(g)
	for _, dim := range []string{"genre", "country", "language", "role", "keyword", "award"} {
		if bs.Relation(dim).NumRows() != g.DB.Relation(dim).NumRows() {
			t.Errorf("dimension %s must be shared as-is", dim)
		}
		if bs.Kind(dim) != relation.KindProperty {
			t.Errorf("dimension %s lost its property annotation", dim)
		}
	}
}
