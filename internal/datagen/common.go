// Package datagen builds the synthetic datasets of the evaluation:
// an IMDb-like database (15 relations, Fig 2 schema, with the sm/bs/bd
// size variants of Appendix D.1), a DBLP-like database (14 relations),
// and an Adult-like census table (1 relation). The real datasets are not
// available offline; these generators reproduce their schema, skew
// (Zipfian popularity), and the planted structures the 41 benchmark
// queries need — see DESIGN.md §3 for the substitution rationale.
//
// All generation is deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// zipfWeights returns n weights following a Zipf-like distribution with
// exponent s, normalized to sum 1; used to skew genre/venue/actor
// popularity the way real catalogs are skewed.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// weightedPick draws an index according to the weights (which must sum
// to ~1).
func weightedPick(rng *rand.Rand, weights []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// sampleDistinct draws k distinct ints from [0, n).
func sampleDistinct(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Eddie",
	"Arnold", "Sylvester", "Dwayne", "Robin", "Jim", "Nicole", "Meryl",
	"Clint", "Audrey", "Grace", "Marlon", "Humphrey", "Ingrid", "Cary",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Murphy", "Carrey", "Stallone", "Schwarzenegger", "Streep", "Eastwood",
	"Kidman", "Cruise", "Hanks", "Roberts", "Stone", "Pacino", "Foster",
}

// personName produces a unique human-ish name for index i.
func personName(i int) string {
	f := firstNames[i%len(firstNames)]
	l := lastNames[(i/len(firstNames))%len(lastNames)]
	gen := i / (len(firstNames) * len(lastNames))
	if gen == 0 {
		return fmt.Sprintf("%s %s", f, l)
	}
	return fmt.Sprintf("%s %s %d", f, l, gen)
}

var titleAdjectives = []string{
	"Dark", "Silent", "Golden", "Lost", "Broken", "Final", "Hidden",
	"Eternal", "Savage", "Crimson", "Frozen", "Burning", "Distant",
	"Sacred", "Midnight", "Ancient", "Electric", "Velvet", "Iron", "Wild",
}

var titleNouns = []string{
	"Horizon", "Empire", "Journey", "Legacy", "Whisper", "Storm",
	"Kingdom", "Shadow", "Promise", "Destiny", "Echo", "River", "Garden",
	"Voyage", "Secret", "Dream", "Mirror", "Flame", "Harvest", "Signal",
}

// movieTitle produces a unique title for index i.
func movieTitle(i int) string {
	a := titleAdjectives[i%len(titleAdjectives)]
	n := titleNouns[(i/len(titleAdjectives))%len(titleNouns)]
	gen := i / (len(titleAdjectives) * len(titleNouns))
	if gen == 0 {
		return fmt.Sprintf("The %s %s", a, n)
	}
	return fmt.Sprintf("The %s %s %d", a, n, gen)
}

// paperTitle produces a unique publication title for index i.
func paperTitle(i int) string {
	a := titleAdjectives[i%len(titleAdjectives)]
	n := titleNouns[(i/len(titleAdjectives))%len(titleNouns)]
	return fmt.Sprintf("On the %s %s of Data Systems %d", a, n, i)
}

// decadeOf buckets a year into its decade label ("1990s").
func decadeOf(year int) string {
	return fmt.Sprintf("%d0s", year/10)
}
