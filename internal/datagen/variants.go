package datagen

import (
	"squid/internal/relation"
)

// BSIMDb builds the bs-IMDb variant of Appendix D.1: every person,
// movie, and company is duplicated (with new primary keys), and for each
// original castinfo pair (P1, M1) only the duplicate pair (P2, M2) is
// added — sparse associations.
func BSIMDb(base *IMDb) *relation.Database {
	return upsizeIMDb(base, false)
}

// BDIMDb builds the bd-IMDb variant: same duplication, but each original
// association (P1, M1) additionally yields (P1, M2) and (P2, M1) —
// dense associations (Appendix D.1's 3 new pairs per original).
func BDIMDb(base *IMDb) *relation.Database {
	return upsizeIMDb(base, true)
}

// upsizeIMDb duplicates the entity relations of the base database and
// rewires the fact tables per the Appendix D.1 rules.
func upsizeIMDb(base *IMDb, dense bool) *relation.Database {
	src := base.DB
	name := "bs-imdb"
	if dense {
		name = "bd-imdb"
	}
	db := relation.NewDatabase(name)

	// Dimensions are shared (copied as-is).
	for _, dim := range []string{"genre", "country", "language", "role", "keyword", "award"} {
		db.AddRelation(copyRelation(src.Relation(dim)))
		db.MarkProperty(dim)
	}

	// Entity relations: duplicate every row with offset ids and a
	// " (dup)" suffix on the display value so the inverted index keeps
	// the copies distinguishable.
	personOff := int64(src.Relation("person").NumRows())
	movieOff := int64(src.Relation("movie").NumRows())
	companyOff := int64(src.Relation("company").NumRows())
	db.AddRelation(duplicateEntities(src.Relation("person"), "name", personOff))
	db.MarkEntity("person")
	db.AddRelation(duplicateEntities(src.Relation("movie"), "title", movieOff))
	db.MarkEntity("movie")
	db.AddRelation(duplicateEntities(src.Relation("company"), "name", companyOff))
	db.MarkEntity("company")

	// movie-side fact tables: duplicate the association for the
	// duplicate movie (sharing dimensions).
	for _, fact := range []struct {
		rel string
		col string
	}{
		{"movietogenre", "movie_id"},
		{"movietocountry", "movie_id"},
		{"movietokeyword", "movie_id"},
	} {
		r := src.Relation(fact.rel)
		nr := copyRelation(r)
		for i := 0; i < r.NumRows(); i++ {
			row := r.Row(i)
			dup := append([]relation.Value(nil), row...)
			idx := r.ColumnIndex(fact.col)
			dup[idx] = relation.IntVal(row[idx].Int() + movieOff)
			nr.MustAppend(dup...)
		}
		db.AddRelation(nr)
	}

	// movietocompany: both ids shift.
	{
		r := src.Relation("movietocompany")
		nr := copyRelation(r)
		mi, ci := r.ColumnIndex("movie_id"), r.ColumnIndex("company_id")
		for i := 0; i < r.NumRows(); i++ {
			row := r.Row(i)
			dup := append([]relation.Value(nil), row...)
			dup[mi] = relation.IntVal(row[mi].Int() + movieOff)
			dup[ci] = relation.IntVal(row[ci].Int() + companyOff)
			nr.MustAppend(dup...)
		}
		db.AddRelation(nr)
	}

	// castinfo: the Appendix D.1 rules. Original (P1, M1) always stays;
	// (P2, M2) is added; dense additionally adds (P1, M2) and (P2, M1).
	{
		r := src.Relation("castinfo")
		nr := copyRelation(r)
		pi, mi := r.ColumnIndex("person_id"), r.ColumnIndex("movie_id")
		for i := 0; i < r.NumRows(); i++ {
			row := r.Row(i)
			p1, m1 := row[pi].Int(), row[mi].Int()
			p2, m2 := p1+personOff, m1+movieOff
			add := func(p, m int64) {
				dup := append([]relation.Value(nil), row...)
				dup[pi] = relation.IntVal(p)
				dup[mi] = relation.IntVal(m)
				nr.MustAppend(dup...)
			}
			add(p2, m2)
			if dense {
				add(p1, m2)
				add(p2, m1)
			}
		}
		db.AddRelation(nr)
	}

	// persontoaward: duplicate for the duplicate person.
	{
		r := src.Relation("persontoaward")
		nr := copyRelation(r)
		pi := r.ColumnIndex("person_id")
		for i := 0; i < r.NumRows(); i++ {
			row := r.Row(i)
			dup := append([]relation.Value(nil), row...)
			dup[pi] = relation.IntVal(row[pi].Int() + personOff)
			nr.MustAppend(dup...)
		}
		db.AddRelation(nr)
	}
	return db
}

// copyRelation deep-copies a relation including rows and key metadata.
func copyRelation(r *relation.Relation) *relation.Relation {
	cols := make([]*relation.Column, 0, r.NumCols())
	for _, c := range r.Columns() {
		cols = append(cols, relation.Col(c.Name, c.Type))
	}
	nr := relation.New(r.Name, cols...)
	if r.PrimaryKey != "" {
		nr.SetPrimaryKey(r.PrimaryKey)
	}
	for _, fk := range r.Foreign {
		nr.AddForeignKey(fk.Column, fk.RefRelation, fk.RefColumn)
	}
	for i := 0; i < r.NumRows(); i++ {
		nr.MustAppend(r.Row(i)...)
	}
	return nr
}

// duplicateEntities copies the relation and appends a duplicate of every
// row with the primary key shifted by off and the display column
// suffixed.
func duplicateEntities(r *relation.Relation, displayCol string, off int64) *relation.Relation {
	nr := copyRelation(r)
	pk := r.ColumnIndex(r.PrimaryKey)
	dc := r.ColumnIndex(displayCol)
	for i := 0; i < r.NumRows(); i++ {
		row := r.Row(i)
		dup := append([]relation.Value(nil), row...)
		dup[pk] = relation.IntVal(row[pk].Int() + off)
		if !row[dc].IsNull() {
			dup[dc] = relation.StringVal(row[dc].Str() + " (dup)")
		}
		nr.MustAppend(dup...)
	}
	return nr
}
