package squid

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"squid/internal/datagen"
)

// countdownCtx reports cancellation only after Err has been consulted
// budget times. It makes the cancellation point inside a single
// discovery deterministic: the first budget checks pass, the next one
// aborts — so a test can prove the abduction consults the context
// repeatedly mid-discovery, not just once at the door.
type countdownCtx struct {
	context.Context
	budget atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.budget.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestDiscoverContextCancellation(t *testing.T) {
	// The IMDb generator (reduced scale) yields a discovery with many
	// candidate filters — genres, companies, decades — so one discovery
	// crosses many cancellation checkpoints.
	g := datagen.GenerateIMDb(datagen.IMDbConfig{Seed: 7, NumPersons: 800, NumMovies: 400, NumCompany: 20})
	sys, err := Build(g.DB, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	person := g.DB.Relation("person")
	examples := make([]string, 0, 5)
	for _, id := range g.Comedians[:5] {
		row, ok := sys.AlphaDB().Entity("person").RowByID(id)
		if !ok {
			t.Fatalf("comedian id %d has no αDB row", id)
		}
		examples = append(examples, person.Column("name").Get(row).Str())
	}

	// Baseline: with a live context the ctx-aware path matches Discover,
	// and one discovery consults the context several times (that is what
	// makes mid-discovery cancellation prompt).
	probe := &countdownCtx{Context: context.Background()}
	probe.budget.Store(1 << 20)
	disc, err := sys.DiscoverContext(probe, examples)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := sys.Discover(examples)
	if err != nil {
		t.Fatal(err)
	}
	if disc.SQL != serial.SQL {
		t.Errorf("DiscoverContext SQL %q != Discover %q", disc.SQL, serial.SQL)
	}
	checks := 1<<20 - probe.budget.Load()
	if checks < 3 {
		t.Fatalf("one discovery consulted ctx only %d times; cancellation would not be prompt", checks)
	}

	// Cancel mid-discovery: allow exactly one candidate evaluation, then
	// trip. The discovery must abort with ctx's error instead of
	// finishing the remaining candidates.
	mid := &countdownCtx{Context: context.Background()}
	mid.budget.Store(1)
	if _, err := sys.DiscoverContext(mid, examples); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-discovery cancellation returned %v, want context.Canceled", err)
	}

	// Pre-canceled context: returns promptly with the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := sys.DiscoverContext(ctx, examples); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled discovery returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("pre-canceled discovery took %v; not prompt", elapsed)
	}

	// A deadline works the same way through errors.Is.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := sys.DiscoverContext(dctx, examples); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}

	// ExecuteContext honors cancellation the same way, and the
	// uncanceled path still answers.
	plan := serial.Plan()
	if _, err := sys.ExecuteContext(ctx, plan); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled execute returned %v, want context.Canceled", err)
	}
	if res, err := sys.Execute(plan); err != nil || res.NumRows() == 0 {
		t.Errorf("plain execute after cancellation tests: rows=%v err=%v", res, err)
	}
}
