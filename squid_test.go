package squid

import (
	"strings"
	"testing"
)

// academicsDB builds the Fig 1 database through the public API.
func academicsDB() *Database {
	db := NewDatabase("cs_academics")
	a := NewRelation("academics",
		Col("id", Int),
		Col("name", String),
	).SetPrimaryKey("id")
	names := []string{"Thomas Cormen", "Dan Suciu", "Jiawei Han", "Sam Madden", "James Kurose", "Joseph Hellerstein"}
	for i, n := range names {
		a.MustAppend(IntVal(int64(100+i)), StringVal(n))
	}
	db.AddRelation(a)
	db.MarkEntity("academics")

	r := NewRelation("research",
		Col("aid", Int),
		Col("interest", String),
	).AddForeignKey("aid", "academics", "id")
	rows := []struct {
		aid      int64
		interest string
	}{
		{100, "algorithms"}, {101, "data management"}, {102, "data mining"},
		{103, "data management"}, {103, "distributed systems"},
		{104, "computer networks"}, {105, "data management"}, {105, "distributed systems"},
	}
	for _, row := range rows {
		r.MustAppend(IntVal(row.aid), StringVal(row.interest))
	}
	db.AddRelation(r)
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Rho = 0.2
	sys.SetParams(params)
	if sys.Params().Rho != 0.2 {
		t.Error("SetParams/Params round trip")
	}

	disc, err := sys.Discover([]string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"})
	if err != nil {
		t.Fatal(err)
	}
	if disc.Entity != "academics" || disc.Attribute != "name" {
		t.Errorf("base query %s.%s", disc.Entity, disc.Attribute)
	}
	if !strings.Contains(disc.SQL, "interest = 'data management'") {
		t.Errorf("SQL missing intent filter:\n%s", disc.SQL)
	}
	if len(disc.Output) != 3 {
		t.Errorf("output=%v", disc.Output)
	}
	joins, sels := disc.PredicateCount()
	if joins != 1 || sels != 1 {
		t.Errorf("predicates: %d joins, %d selections", joins, sels)
	}

	// The engine plan must reproduce the αDB row-set output.
	res, err := sys.Execute(disc.Plan())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != len(disc.Output) {
		t.Errorf("engine rows=%d output=%d", res.NumRows(), len(disc.Output))
	}
}

func TestPublicAPIErrors(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Discover(nil); err == nil {
		t.Error("empty examples must error")
	}
	if _, err := sys.Discover([]string{"Nobody Here"}); err == nil {
		t.Error("unknown example must error")
	}
	// Database with no entity annotations fails the offline phase.
	bad := NewDatabase("bad")
	bad.AddRelation(NewRelation("t", Col("id", Int)))
	if _, err := Build(bad, DefaultBuildConfig()); err == nil {
		t.Error("Build must fail without entity relations")
	}
}

func TestStatsExposed(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Stats()
	if s.NumRelations != 2 {
		t.Errorf("relations=%d", s.NumRelations)
	}
	if sys.ExecutableDB().Relation("academics") == nil {
		t.Error("executable DB missing base relation")
	}
}

func TestRecommendExamples(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Rho = 0.2
	sys.SetParams(params)
	disc, err := sys.Discover([]string{"Dan Suciu", "Sam Madden"})
	if err != nil {
		t.Fatal(err)
	}
	recs := disc.RecommendExamples(3)
	for _, r := range recs {
		if r == "Dan Suciu" || r == "Sam Madden" {
			t.Errorf("recommendation %q repeats an example", r)
		}
	}
}

func TestDiscoverAllRanked(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	all, err := sys.DiscoverAll([]string{"Dan Suciu", "Sam Madden"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no candidates")
	}
	single, err := sys.Discover([]string{"Dan Suciu", "Sam Madden"})
	if err != nil {
		t.Fatal(err)
	}
	if all[0].SQL != single.SQL {
		t.Error("DiscoverAll[0] must equal Discover")
	}
}

func TestFacadeIncrementalMaintenance(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A new data-management researcher arrives.
	if err := sys.InsertEntity("academics", IntVal(200), StringVal("New Researcher")); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertFact("research", IntVal(200), StringVal("data management")); err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Rho = 0.2
	sys.SetParams(params)
	disc, err := sys.Discover([]string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range disc.Output {
		if v == "New Researcher" {
			found = true
		}
	}
	if !found {
		t.Errorf("incrementally inserted researcher missing from output: %v", disc.Output)
	}
}

func TestDiscoverWithoutDisambiguation(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := sys.Discover([]string{"Dan Suciu", "Sam Madden"})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sys.DiscoverWithoutDisambiguation([]string{"Dan Suciu", "Sam Madden"})
	if err != nil {
		t.Fatal(err)
	}
	// No ambiguity in this fixture: identical outputs.
	if strings.Join(d1.Output, ",") != strings.Join(d2.Output, ",") {
		t.Error("disambiguation changed output on unambiguous data")
	}
}
