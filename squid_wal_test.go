package squid

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"sort"
	"testing"

	"squid/internal/iofault"
	"squid/internal/wal"
)

// walProbe is the fixed discovery whose Explain bytes fingerprint the
// αDB state: it covers filter selection, selectivity statistics, and
// the query output, so two states that differ anywhere the paper's
// pipeline can see render different fingerprints.
var walProbe = []string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"}

// walWorkload is the deterministic ingest script of the recovery
// tests: every batch is one InsertBatch call, hence one published
// epoch and one WAL record. Batches mix entity and fact rows
// (including facts referencing a same-batch entity) and shift the
// probe's "data management" cohort, so each prefix of the workload has
// a distinct fingerprint.
func walWorkload() [][]InsertOp {
	return [][]InsertOp{
		{{Rel: "academics", Vals: []Value{IntVal(106), StringVal("Grace Hopper")}}},
		{{Rel: "research", Vals: []Value{IntVal(106), StringVal("data management")}}},
		{
			{Rel: "academics", Vals: []Value{IntVal(107), StringVal("Barbara Liskov")}},
			{Rel: "research", Vals: []Value{IntVal(107), StringVal("data management")}},
			{Rel: "research", Vals: []Value{IntVal(107), StringVal("distributed systems")}},
		},
		{{Rel: "research", Vals: []Value{IntVal(100), StringVal("data management")}}},
		{
			{Rel: "academics", Vals: []Value{IntVal(108), StringVal("Alan Turing")}},
			{Rel: "research", Vals: []Value{IntVal(108), StringVal("algorithms")}},
		},
	}
}

func walFingerprint(t *testing.T, sys *System) string {
	t.Helper()
	disc, err := sys.Discover(walProbe)
	if err != nil {
		t.Fatalf("probe discovery: %v", err)
	}
	return disc.Explain()
}

// walReference runs the workload once on fs with the given policy and
// returns the per-prefix fingerprints: sigs[i] is the state after i
// batches (sigs[0] = the freshly built system).
func walReference(t *testing.T, fs *iofault.MemFS, policy wal.SyncPolicy) (sigs []string) {
	t.Helper()
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, res, err := wal.Open("wal", wal.Options{Policy: policy, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("fresh log replayed %d records", len(res.Records))
	}
	sys.AttachWAL(l)
	sigs = []string{walFingerprint(t, sys)}
	for i, batch := range walWorkload() {
		if err := sys.InsertBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		sigs = append(sigs, walFingerprint(t, sys))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return sigs
}

// walFrameEnds parses the log's frame boundaries from the wire format
// (8-byte header, then u32 length | u32 CRC | payload per record).
func walFrameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	if len(data) < 8 || string(data[:4]) != wal.Magic {
		t.Fatalf("not a WAL segment (%d bytes)", len(data))
	}
	ends := []int{8}
	off := 8
	for off < len(data) {
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 8 + plen
		ends = append(ends, off)
	}
	if off != len(data) {
		t.Fatalf("frame walk ends at %d, log is %d bytes", off, len(data))
	}
	return ends
}

// TestWALRecoveryMatrix is the fault-injection acceptance check of the
// write-ahead log: for every prefix of the log — every state a torn
// write can leave on disk — a reboot must recover to exactly the state
// after the batches whose records survived whole, with a discovery
// fingerprint byte-identical to the reference run's. Set
// SQUID_WAL_FULL_SWEEP=1 to cut at every byte offset instead of the
// boundary neighborhood.
func TestWALRecoveryMatrix(t *testing.T) {
	fs := iofault.NewMemFS()
	sigs := walReference(t, fs, wal.PolicyNever)
	logBytes, ok := fs.Bytes("wal")
	if !ok {
		t.Fatal("no log written")
	}

	var cuts []int
	if os.Getenv("SQUID_WAL_FULL_SWEEP") != "" {
		for m := 0; m <= len(logBytes); m++ {
			cuts = append(cuts, m)
		}
	} else {
		// Each frame boundary and its neighborhood: the cut landing
		// exactly on a boundary (clean), inside the next frame header,
		// and inside the next payload (torn).
		ends := walFrameEnds(t, logBytes)
		add := func(m int) {
			if m >= 0 && m <= len(logBytes) {
				cuts = append(cuts, m)
			}
		}
		add(0)
		add(3) // torn segment header
		for i, e := range ends {
			add(e)
			add(e - 3)
			add(e + 1)
			add(e + 5)
			if i+1 < len(ends) {
				add((e + ends[i+1]) / 2)
			}
		}
		sort.Ints(cuts)
	}

	for _, m := range cuts {
		fs2 := iofault.NewMemFS()
		fs2.SetFile("wal", logBytes[:m])
		sys2, err := Build(academicsDB(), DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		info, err := sys2.RecoverWAL("wal", wal.Options{Policy: wal.PolicyNever, FS: fs2})
		if err != nil {
			t.Fatalf("prefix %d/%d bytes: recovery failed: %v", m, len(logBytes), err)
		}
		if info.Replayed >= len(sigs) {
			t.Fatalf("prefix %d: replayed %d records, workload has %d batches",
				m, info.Replayed, len(sigs)-1)
		}
		if got := walFingerprint(t, sys2); got != sigs[info.Replayed] {
			t.Errorf("prefix %d bytes (%d records replayed): fingerprint diverges from reference:\n--- recovered ---\n%s\n--- reference ---\n%s",
				m, info.Replayed, got, sigs[info.Replayed])
		}
		if err := sys2.WAL().Close(); err != nil {
			t.Fatalf("prefix %d: closing recovered log: %v", m, err)
		}
	}
}

// TestWALAckedNeverLost is the fsync=always contract: sweep a power
// loss across every byte of the log's write stream; whatever the crash
// point, a reboot from the durable view must recover every batch that
// was acknowledged before the crash — and land on a state whose
// fingerprint matches the reference for however many records survived.
func TestWALAckedNeverLost(t *testing.T) {
	// Reference run (no faults) for fingerprints and the write-stream
	// length. The WAL is the only file on this MemFS, so TotalWritten
	// enumerates exactly the log's crash points.
	refFS := iofault.NewMemFS()
	sigs := walReference(t, refFS, wal.PolicyAlways)
	total := refFS.TotalWritten()
	if total == 0 {
		t.Fatal("reference run wrote nothing")
	}

	step := int64(1)
	if testing.Short() {
		step = total/64 + 1
	}
	for n := int64(0); n <= total; n += step {
		fs := iofault.NewMemFS()
		fs.CrashAfterBytes(n)
		acked := 0
		func() {
			sys, err := Build(academicsDB(), DefaultBuildConfig())
			if err != nil {
				t.Fatal(err)
			}
			l, _, err := wal.Open("wal", wal.Options{Policy: wal.PolicyAlways, FS: fs})
			if err != nil {
				return // crashed inside Open: nothing acknowledged
			}
			sys.AttachWAL(l)
			for _, batch := range walWorkload() {
				if err := sys.InsertBatch(batch); err != nil {
					return // not acknowledged
				}
				acked++
			}
		}()

		// Reboot from the power-loss view: only fsynced bytes survive.
		sys2, err := Build(academicsDB(), DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		info, err := sys2.RecoverWAL("wal", wal.Options{Policy: wal.PolicyNever, FS: fs.CloneDurable()})
		if err != nil {
			t.Fatalf("crash after %d/%d bytes: recovery failed: %v", n, total, err)
		}
		if info.Replayed < acked {
			t.Fatalf("crash after %d bytes: %d batches acknowledged, only %d recovered — acknowledged write lost",
				n, acked, info.Replayed)
		}
		if got := walFingerprint(t, sys2); got != sigs[info.Replayed] {
			t.Errorf("crash after %d bytes (%d replayed): fingerprint diverges from reference", n, info.Replayed)
		}
		sys2.WAL().Close()
	}
}

// TestWALSnapshotAnchor checks the checkpoint anchor: a snapshot taken
// mid-workload records its epoch sequence, and a boot from it replays
// only the records past that sequence — never double-applying rows the
// snapshot already holds.
func TestWALSnapshotAnchor(t *testing.T) {
	fs := iofault.NewMemFS()
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open("wal", wal.Options{Policy: wal.PolicyNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWAL(l)

	batches := walWorkload()
	const snapAfter = 2
	var snap bytes.Buffer
	for i, batch := range batches {
		if err := sys.InsertBatch(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if i+1 == snapAfter {
			if err := sys.Save(&snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := walFingerprint(t, sys)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	info, err := sys2.RecoverWAL("wal", wal.Options{Policy: wal.PolicyNever, FS: fs.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if wantReplay := len(batches) - snapAfter; info.Replayed != wantReplay {
		t.Errorf("replayed %d records, want %d (snapshot covers the first %d)",
			info.Replayed, wantReplay, snapAfter)
	}
	if got := walFingerprint(t, sys2); got != want {
		t.Errorf("snapshot+tail recovery diverges:\n--- recovered ---\n%s\n--- reference ---\n%s", got, want)
	}
}

// TestWALSingleRowInserts checks that the InsertEntity/InsertFact
// paths log and fence exactly like InsertBatch: one record per call,
// full round trip across a reboot.
func TestWALSingleRowInserts(t *testing.T) {
	fs := iofault.NewMemFS()
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open("wal", wal.Options{Policy: wal.PolicyAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWAL(l)
	if err := sys.InsertEntity("academics", IntVal(106), StringVal("Grace Hopper")); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertFact("research", IntVal(106), StringVal("data management")); err != nil {
		t.Fatal(err)
	}
	want := walFingerprint(t, sys)
	if got := l.Metrics().Records; got != 2 {
		t.Errorf("logged %d records, want 2", got)
	}

	// Power loss (no Close): fsync=always means both inserts survive.
	sys2, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	info, err := sys2.RecoverWAL("wal", wal.Options{Policy: wal.PolicyNever, FS: fs.CloneDurable()})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 2 {
		t.Fatalf("replayed %d records, want 2", info.Replayed)
	}
	if got := walFingerprint(t, sys2); got != want {
		t.Errorf("recovered fingerprint diverges:\n%s\nwant:\n%s", got, want)
	}
}

// TestWALSyncFailureRefusesAck checks the safe-by-refusal contract: a
// failing fsync under fsync=always must surface ErrWALSync to the
// writer (the rows are not durable) and poison the log against later
// acknowledgments.
func TestWALSyncFailureRefusesAck(t *testing.T) {
	fs := iofault.NewMemFS()
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open("wal", wal.Options{Policy: wal.PolicyAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachWAL(l)
	fs.FailSyncs(1)
	err = sys.InsertEntity("academics", IntVal(106), StringVal("Grace Hopper"))
	if !errors.Is(err, ErrWALSync) {
		t.Fatalf("insert with failing fsync = %v, want ErrWALSync", err)
	}
	// Poisoned: the next insert refuses too, even though fsync works
	// again — durability of the earlier rows is still unproven.
	if err := sys.InsertEntity("academics", IntVal(107), StringVal("Barbara Liskov")); !errors.Is(err, ErrWALSync) {
		t.Fatalf("insert after poison = %v, want ErrWALSync", err)
	}
	if !l.Metrics().Failed {
		t.Error("log not marked failed")
	}
}
